"""Block-wise transfers (RFC 7959 Block2) for large payloads over CoAP.

SUIT payloads are far larger than one 802.15.4 frame; the update worker
fetches them block by block with the Block2 option, which this module
encodes/decodes and slices.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.coap import CoapError

#: szx encodes block sizes 16 << szx, szx in 0..6.
MAX_SZX = 6


def size_to_szx(size: int) -> int:
    szx = size.bit_length() - 5
    if not 0 <= szx <= MAX_SZX or (16 << szx) != size:
        raise CoapError(f"invalid block size {size}")
    return szx


@dataclass(frozen=True)
class BlockOption:
    """Decoded Block2/Block1 option value."""

    num: int
    more: bool
    szx: int

    @property
    def size(self) -> int:
        return 16 << self.szx

    @property
    def offset(self) -> int:
        return self.num * self.size

    def encode(self) -> bytes:
        if self.num >= 1 << 20:
            raise CoapError(f"block number {self.num} out of range")
        value = (self.num << 4) | (0x8 if self.more else 0) | self.szx
        if value == 0:
            return b""
        length = (value.bit_length() + 7) // 8
        return value.to_bytes(length, "big")

    @classmethod
    def decode(cls, raw: bytes) -> "BlockOption":
        if len(raw) > 3:
            raise CoapError("block option longer than 3 bytes")
        value = int.from_bytes(raw, "big")
        szx = value & 0x7
        if szx == 7:
            raise CoapError("reserved szx 7")
        return cls(num=value >> 4, more=bool(value & 0x8), szx=szx)


def slice_block(payload: bytes, block: BlockOption) -> tuple[bytes, bool]:
    """Extract one block; returns (chunk, more_follows)."""
    start = block.offset
    if start > len(payload):
        raise CoapError(
            f"block {block.num} beyond payload of {len(payload)} bytes"
        )
    end = min(start + block.size, len(payload))
    return payload[start:end], end < len(payload)
