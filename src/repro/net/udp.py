"""Minimal UDP layer over the simulated link."""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable

from repro.net.link import Interface

_HEADER = struct.Struct("<HH")


@dataclass(frozen=True)
class Datagram:
    """One received UDP datagram."""

    src_addr: str
    src_port: int
    dst_port: int
    payload: bytes


class UdpStack:
    """Port demultiplexer bound to one interface."""

    def __init__(self, iface: Interface):
        self.iface = iface
        self._sockets: dict[int, "UdpSocket"] = {}
        iface.receive = self._on_frame

    def socket(self, port: int) -> "UdpSocket":
        if port in self._sockets:
            raise ValueError(f"port {port} already bound on {self.iface.addr}")
        sock = UdpSocket(self, port)
        self._sockets[port] = sock
        return sock

    def _on_frame(self, frame: bytes, src_addr: str) -> None:
        if len(frame) < _HEADER.size:
            return  # runt datagram: dropped silently, like real UDP
        src_port, dst_port = _HEADER.unpack_from(frame)
        sock = self._sockets.get(dst_port)
        if sock is None:
            return  # no listener: ICMP-less world, silently dropped
        sock.deliver(
            Datagram(
                src_addr=src_addr,
                src_port=src_port,
                dst_port=dst_port,
                payload=frame[_HEADER.size :],
            )
        )

    def send(self, src_port: int, dst_addr: str, dst_port: int,
             payload: bytes) -> None:
        self.iface.send(dst_addr, _HEADER.pack(src_port, dst_port) + payload)


class UdpSocket:
    """One bound port; delivers datagrams to a callback."""

    def __init__(self, stack: UdpStack, port: int):
        self.stack = stack
        self.port = port
        self.on_datagram: Callable[[Datagram], None] | None = None
        self.received = 0
        self.sent = 0

    def send_to(self, dst_addr: str, dst_port: int, payload: bytes) -> None:
        self.sent += 1
        self.stack.send(self.port, dst_addr, dst_port, payload)

    def deliver(self, datagram: Datagram) -> None:
        self.received += 1
        if self.on_datagram is not None:
            self.on_datagram(datagram)
