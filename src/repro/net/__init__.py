"""Low-power network substrate: lossy link, UDP, CoAP, block-wise transfer."""

from repro.net.block import BlockOption, slice_block
from repro.net.coap import (
    ACK,
    CoapError,
    CoapMessage,
    COAP_PORT,
    CON,
    CONTENT,
    GET,
    NON,
    NOT_FOUND,
    POST,
    code_string,
)
from repro.net.gcoap import CoapClient, CoapServer, Resource
from repro.net.link import Interface, Link, LinkStats
from repro.net.udp import Datagram, UdpSocket, UdpStack

__all__ = [
    "ACK",
    "BlockOption",
    "COAP_PORT",
    "CON",
    "CONTENT",
    "CoapClient",
    "CoapError",
    "CoapMessage",
    "CoapServer",
    "Datagram",
    "GET",
    "Interface",
    "Link",
    "LinkStats",
    "NON",
    "NOT_FOUND",
    "POST",
    "Resource",
    "UdpSocket",
    "UdpStack",
    "code_string",
    "slice_block",
]
