"""Simulated IEEE 802.15.4-class radio link with 6LoWPAN-style fragmentation.

One :class:`Link` connects any number of interfaces (a broadcast domain).
Frames above the 802.15.4 payload MTU are fragmented and reassembled
transparently, each fragment paying its own airtime and loss dice roll —
so large transfers (e.g. SUIT payloads) really behave like low-power
wireless: slower, lossier, retransmitted block by block.

Loss is deterministic given the seed, keeping every experiment repeatable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rtos.kernel import Kernel

#: Usable payload per 802.15.4 frame after MAC/6LoWPAN headers (bytes).
FRAME_PAYLOAD = 96
#: Nominal 802.15.4 air bitrate.
BITRATE_BPS = 250_000
#: Per-frame MAC/PHY overhead (headers, CSMA, turnaround), microseconds.
FRAME_OVERHEAD_US = 1_200.0


@dataclass
class LinkStats:
    frames_sent: int = 0
    frames_dropped: int = 0
    bytes_sent: int = 0
    datagrams_delivered: int = 0
    bytes_received: int = 0


@dataclass
class Interface:
    """One radio endpoint with an address and a receive callback."""

    addr: str
    receive: Callable[[bytes, str], None] | None = None
    link: "Link | None" = None

    def __post_init__(self) -> None:
        #: Per-endpoint traffic counters: everything *this* radio put on
        #: the air (including frames that were then lost) plus everything
        #: it heard.  Retransmissions therefore show up here — and in the
        #: energy model that rides these counters — even though the
        #: application saw a single logical transfer.
        self.stats = LinkStats()

    def send(self, dst_addr: str, payload: bytes) -> None:
        if self.link is None:
            raise RuntimeError(f"interface {self.addr!r} is not attached")
        self.link.transmit(self, dst_addr, payload)


class Link:
    """A shared lossy medium delivering datagrams with airtime latency."""

    def __init__(self, kernel: "Kernel", loss: float = 0.0, seed: int = 1234,
                 latency_us: float = FRAME_OVERHEAD_US):
        if not 0.0 <= loss < 1.0:
            raise ValueError(f"loss probability out of range: {loss}")
        self.kernel = kernel
        self.loss = loss
        self.latency_us = latency_us
        self._rng = random.Random(seed)
        self._interfaces: dict[str, Interface] = {}
        self.stats = LinkStats()

    def attach(self, iface: Interface) -> Interface:
        if iface.addr in self._interfaces:
            raise ValueError(f"address {iface.addr!r} already attached")
        iface.link = self
        self._interfaces[iface.addr] = iface
        return iface

    def interface(self, addr: str) -> Interface:
        return self._interfaces[addr]

    def detach(self, addr: str) -> None:
        """Take a radio off the air (device powered down or rebooting).

        The old :class:`Interface` object is neutralized, not just
        forgotten: in-flight datagrams hold a reference to it through
        their delivery timers, and must land on a dead radio — not on
        the rebooted incarnation that later re-attaches under the same
        address.
        """
        iface = self._interfaces.pop(addr, None)
        if iface is not None:
            iface.receive = None
            iface.link = None

    def transmit(self, src: Interface, dst_addr: str, payload: bytes) -> None:
        """Send one datagram; it arrives fragmented, delayed, or not at all.

        The whole datagram is lost if *any* fragment is lost (link-layer
        reassembly has no ARQ here; reliability belongs to CoAP CON/ACK).
        """
        dst = self._interfaces.get(dst_addr)
        fragments = max(1, -(-len(payload) // FRAME_PAYLOAD))
        airtime_us = (
            fragments * self.latency_us
            + (len(payload) + fragments * 21) * 8 / BITRATE_BPS * 1e6
        )
        self.stats.frames_sent += fragments
        self.stats.bytes_sent += len(payload)
        src.stats.frames_sent += fragments
        src.stats.bytes_sent += len(payload)
        if dst is None:
            return  # no such destination: the frames vanish into the ether
        for _ in range(fragments):
            if self._rng.random() < self.loss:
                self.stats.frames_dropped += 1
                src.stats.frames_dropped += 1
                return
        data = bytes(payload)
        src_addr = src.addr

        def deliver() -> None:
            if dst.receive is None:
                return  # radio died (detached) while the frames were in flight
            self.stats.datagrams_delivered += 1
            dst.stats.datagrams_delivered += 1
            dst.stats.bytes_received += len(data)
            dst.receive(data, src_addr)

        self.kernel.timers.set(deliver, airtime_us)
