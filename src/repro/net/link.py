"""Simulated IEEE 802.15.4-class radio link with 6LoWPAN-style fragmentation.

One :class:`Link` connects any number of interfaces (a broadcast domain).
Frames above the 802.15.4 payload MTU are fragmented and reassembled
transparently, each fragment paying its own airtime and loss dice roll —
so large transfers (e.g. SUIT payloads) really behave like low-power
wireless: slower, lossier, retransmitted block by block.

Loss is deterministic given the seed, keeping every experiment repeatable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rtos.kernel import Kernel

#: Usable payload per 802.15.4 frame after MAC/6LoWPAN headers (bytes).
FRAME_PAYLOAD = 96
#: Nominal 802.15.4 air bitrate.
BITRATE_BPS = 250_000
#: Per-frame MAC/PHY overhead (headers, CSMA, turnaround), microseconds.
FRAME_OVERHEAD_US = 1_200.0


@dataclass
class LinkStats:
    frames_sent: int = 0
    frames_dropped: int = 0
    bytes_sent: int = 0
    datagrams_delivered: int = 0
    bytes_received: int = 0


@dataclass
class Interface:
    """One radio endpoint with an address and a receive callback."""

    addr: str
    receive: Callable[[bytes, str], None] | None = None
    link: "Link | None" = None

    def __post_init__(self) -> None:
        #: Per-endpoint traffic counters: everything *this* radio put on
        #: the air (including frames that were then lost) plus everything
        #: it heard.  Retransmissions therefore show up here — and in the
        #: energy model that rides these counters — even though the
        #: application saw a single logical transfer.
        self.stats = LinkStats()

    def send(self, dst_addr: str, payload: bytes) -> None:
        if self.link is None:
            raise RuntimeError(f"interface {self.addr!r} is not attached")
        self.link.transmit(self, dst_addr, payload)


class Link:
    """A shared lossy medium delivering datagrams with airtime latency."""

    def __init__(self, kernel: "Kernel", loss: float = 0.0, seed: int = 1234,
                 latency_us: float = FRAME_OVERHEAD_US):
        if not 0.0 <= loss < 1.0:
            raise ValueError(f"loss probability out of range: {loss}")
        self.kernel = kernel
        self.loss = loss
        self.latency_us = latency_us
        self._rng = random.Random(seed)
        self._interfaces: dict[str, Interface] = {}
        #: RFC 7390-style group membership: group address → (member
        #: address → member interface).  Kept separate from unicast
        #: addressing so a group address can never shadow a device.
        self._groups: dict[str, dict[str, Interface]] = {}
        self.stats = LinkStats()

    def attach(self, iface: Interface) -> Interface:
        if iface.addr in self._interfaces:
            raise ValueError(f"address {iface.addr!r} already attached")
        iface.link = self
        self._interfaces[iface.addr] = iface
        return iface

    def interface(self, addr: str) -> Interface:
        return self._interfaces[addr]

    def detach(self, addr: str) -> None:
        """Take a radio off the air (device powered down or rebooting).

        The old :class:`Interface` object is neutralized, not just
        forgotten: in-flight datagrams hold a reference to it through
        their delivery timers, and must land on a dead radio — not on
        the rebooted incarnation that later re-attaches under the same
        address.
        """
        iface = self._interfaces.pop(addr, None)
        if iface is not None:
            iface.receive = None
            iface.link = None
        # Group membership is deliberately left alone: the dead
        # interface stays in its groups (skipped at delivery, like any
        # in-flight unicast frame) and a rebooted incarnation replaces
        # it in place when it re-joins, keeping the member order — and
        # therefore the seeded loss-dice order — stable.

    # -- group (multicast) addressing -----------------------------------

    def join(self, group_addr: str, iface: Interface) -> None:
        """Subscribe one interface to a group address.

        Re-joining under the same unicast address (a rebooted device's
        new radio incarnation) replaces the old membership in place.
        """
        if group_addr in self._interfaces:
            raise ValueError(
                f"{group_addr!r} is a unicast address, not a group")
        self._groups.setdefault(group_addr, {})[iface.addr] = iface

    def leave(self, group_addr: str, addr: str) -> None:
        """Unsubscribe one member address from a group (idempotent)."""
        self._groups.get(group_addr, {}).pop(addr, None)

    def group_members(self, group_addr: str) -> list[str]:
        """Member addresses of one group, join order."""
        return list(self._groups.get(group_addr, {}))

    def transmit(self, src: Interface, dst_addr: str, payload: bytes) -> None:
        """Send one datagram; it arrives fragmented, delayed, or not at all.

        The whole datagram is lost if *any* fragment is lost (link-layer
        reassembly has no ARQ here; reliability belongs to CoAP CON/ACK).

        A ``dst_addr`` naming a group delivers to every live member: the
        sender puts the fragments on the air **once** (one airtime cost,
        one set of TX stats — the whole point of multicast), and each
        member rolls its own independent loss dice, because fading is
        per-receiver on a real radio.  Member order — and therefore the
        seeded dice order — is join order.
        """
        fragments = max(1, -(-len(payload) // FRAME_PAYLOAD))
        airtime_us = (
            fragments * self.latency_us
            + (len(payload) + fragments * 21) * 8 / BITRATE_BPS * 1e6
        )
        self.stats.frames_sent += fragments
        self.stats.bytes_sent += len(payload)
        src.stats.frames_sent += fragments
        src.stats.bytes_sent += len(payload)
        data = bytes(payload)
        src_addr = src.addr

        def deliver_to(dst: Interface) -> None:
            if dst.receive is None:
                return  # radio died (detached) while the frames were in flight
            self.stats.datagrams_delivered += 1
            dst.stats.datagrams_delivered += 1
            dst.stats.bytes_received += len(data)
            dst.receive(data, src_addr)

        members = self._groups.get(dst_addr)
        if members is not None:
            for member in members.values():
                if member is src or member.receive is None:
                    # The sender never hears itself; a dead radio is
                    # skipped before the dice, like a missing unicast dst.
                    continue
                if any(self._rng.random() < self.loss
                       for _ in range(fragments)):
                    self.stats.frames_dropped += 1
                    continue
                self.kernel.timers.set(
                    lambda dst=member: deliver_to(dst), airtime_us)
            return

        dst = self._interfaces.get(dst_addr)
        if dst is None:
            return  # no such destination: the frames vanish into the ether
        for _ in range(fragments):
            if self._rng.random() < self.loss:
                self.stats.frames_dropped += 1
                src.stats.frames_dropped += 1
                return
        self.kernel.timers.set(lambda: deliver_to(dst), airtime_us)
