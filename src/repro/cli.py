"""Command-line interface: ``python -m repro <command>``.

Small developer tools around the library:

* ``asm IN.s [-o OUT.bin]``     — assemble eBPF text to bytecode;
* ``disasm IN.bin``             — disassemble bytecode to text;
* ``verify IN.bin``             — run the pre-flight checker;
* ``run IN.s|IN.bin [--ctx HEX] [--board NAME] [--impl NAME]``
                                — execute a program on a simulated board;
* ``boards``                    — list board models;
* ``demo``                      — run the multi-tenant showcase scenario;
* ``fanout``                    — multi-instance fan-out: K tenants x M
                                  instances of one image on one hook,
                                  reporting attach times and image-cache
                                  hit rates;
* ``deploy SPEC``               — declarative deployment: plan+apply a
                                  spec (JSON file or builtin name) onto a
                                  fresh device, then re-plan to show
                                  convergence;
* ``fleet``                     — apply one spec across N simulated
                                  devices, reporting the warm-rollout
                                  speedup from the shared image cache;
* ``canary``                    — canary fleet rollout: a poisoned spec
                                  rolls back on the canary subset without
                                  touching the rest, the fixed spec bakes
                                  clean and promotes fleet-wide;
* ``publish``                   — fleet-wide OTA publish: one signed spec
                                  manifest fans out over a shared radio
                                  link to every device's SpecUpdateWorker,
                                  with anti-rollback, idempotent
                                  republish, and a health-gated canary
                                  stage for the poisoned/fixed pair;
* ``chaos``                     — chaos-hardened publish: a seeded fault
                                  plan crashes, stalls and loss-bursts
                                  the fleet mid-publish and the rollout
                                  still converges; a permanently dead
                                  device degrades the result to an
                                  UNREACHABLE row instead of raising;
* ``controlplane``              — maintainer control plane: submit a
                                  signed release, publish it with the
                                  fleet-scale profile (one multicast
                                  trigger, sharded co-run), register and
                                  evict devices at runtime, stream
                                  per-device status rows.

The fleet-shaped subcommands (``fleet``, ``canary``, ``publish``,
``chaos``, ``controlplane``) share one parent parser, so ``--devices``,
``--seed``, ``--loss``, ``--board`` and ``--impl`` spell and default
identically everywhere.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.rtos.board import BOARDS, board_by_name
from repro.vm import (
    CertFCInterpreter,
    Interpreter,
    Program,
    RbpfInterpreter,
    VerificationError,
    VMFault,
    assemble,
    compile_program,
    disassemble,
    verify,
)

_VM_FACTORIES = {
    "femto-containers": Interpreter,
    "rbpf": RbpfInterpreter,
    "certfc": CertFCInterpreter,
    "jit": compile_program,
}


def _load_program(path: Path) -> Program:
    data = path.read_bytes()
    if path.suffix in (".s", ".asm", ".txt") or not _looks_binary(data):
        return assemble(data.decode(), name=path.stem)
    return Program.from_bytes(data, name=path.stem)


def _looks_binary(data: bytes) -> bool:
    return any(byte < 9 for byte in data[:64])


def cmd_asm(args: argparse.Namespace) -> int:
    program = assemble(Path(args.source).read_text(),
                       name=Path(args.source).stem)
    raw = program.to_bytes()
    if args.output:
        Path(args.output).write_bytes(raw)
        print(f"{len(program.slots)} slots, {len(raw)} bytes -> {args.output}")
    else:
        sys.stdout.write(raw.hex() + "\n")
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    from repro.femtoc import CompileError, compile_source

    try:
        program = compile_source(Path(args.source).read_text(),
                                 name=Path(args.source).stem)
    except CompileError as error:
        print(f"compile error: {error}")
        return 1
    if args.emit_asm:
        sys.stdout.write(disassemble(program))
        return 0
    raw = program.to_bytes()
    if args.output:
        Path(args.output).write_bytes(raw)
        print(f"{len(program.slots)} slots, {len(raw)} bytes -> {args.output}")
    else:
        sys.stdout.write(raw.hex() + "\n")
    return 0


def cmd_disasm(args: argparse.Namespace) -> int:
    program = _load_program(Path(args.image))
    sys.stdout.write(disassemble(program))
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    program = _load_program(Path(args.image))
    try:
        report = verify(program)
    except VerificationError as error:
        print(f"REJECTED: {error}")
        return 1
    print(f"OK: {report.instruction_count} instructions, "
          f"{report.branch_count} branches, "
          f"helpers: {sorted(hex(h) for h in report.helper_ids) or 'none'}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    program = _load_program(Path(args.image))
    board = board_by_name(args.board)
    factory = _VM_FACTORIES[args.impl]
    vm = factory(program)
    context = bytes.fromhex(args.ctx) if args.ctx else None
    try:
        result = vm.run(context=context)
    except VMFault as fault:
        print(f"FAULT: {type(fault).__name__}: {fault}")
        return 1
    cycles = board.vm_execution_cycles(result.stats, vm.implementation)
    print(f"r0 = {result.value} (0x{result.value:x})")
    print(f"{result.stats.executed} instructions, "
          f"{result.stats.branches_taken} taken branches")
    print(f"{cycles} cycles on {board.name} = {board.us(cycles):.2f} us "
          f"@ {board.mhz} MHz [{args.impl}]")
    return 0


def cmd_boards(_args: argparse.Namespace) -> int:
    for name in BOARDS:
        board = board_by_name(name)
        print(f"{name:10s} {board.cpu:40s} {board.mhz} MHz  "
              f"{board.ram_kib} KiB RAM  {board.flash_kib} KiB flash")
    return 0


def cmd_shell(args: argparse.Namespace) -> int:
    """Run device-shell commands against the showcase scenario."""
    from repro.rtos.shell import DeviceShell
    from repro.scenarios import build_multi_tenant_device

    device = build_multi_tenant_device(sensor_period_us=500_000)
    device.kernel.run(until_us=2_000_000)
    shell = DeviceShell(device.engine)
    commands = args.commands or ["uptime", "ps", "hooks", "fc list", "ram"]
    for command in commands:
        print(f"> {command}")
        print(shell.execute(command))
        print()
    return 0


def cmd_demo(_args: argparse.Namespace) -> int:
    from repro.net import CoapMessage, coap
    from repro.scenarios import (
        COAP_PORT,
        DEVICE_ADDR,
        build_multi_tenant_device,
    )

    device = build_multi_tenant_device(sensor_period_us=500_000)
    device.kernel.run(until_us=2_000_000)
    replies = []
    request = CoapMessage(mtype=coap.CON, code=coap.GET)
    request.add_uri_path("/sensor/temp")
    device.client.request(DEVICE_ADDR, COAP_PORT, request, replies.append)
    device.kernel.run(until_us=device.kernel.now_us + 2_000_000)
    print(f"containers: {[c.name for c in device.engine.containers()]}")
    print(f"sensor average over CoAP: {replies[0].payload.decode()} "
          "centi-degC")
    print("context switches observed by tenant B: "
          f"{sum(device.engine.global_store.snapshot().values())}")
    print(f"engine RAM: {device.engine.total_ram_bytes()} B")
    return 0


def cmd_fanout(args: argparse.Namespace) -> int:
    """Run the multi-instance fan-out scenario and report cache effect."""
    import time

    from repro.scenarios import build_fanout_device
    from repro.vm.imagecache import IMAGE_CACHE

    IMAGE_CACHE.clear()  # measure from a cold cache, deterministically
    board = board_by_name(args.board)

    start = time.perf_counter()
    device = build_fanout_device(
        tenants=args.tenants,
        instances_per_tenant=args.instances,
        implementation=args.impl,
        board=board,
    )
    attach_s = time.perf_counter() - start

    start = time.perf_counter()
    runs = device.fire(args.fires)
    fire_s = time.perf_counter() - start

    instances = len(device.containers)
    stats = IMAGE_CACHE.stats()
    print(f"image: {device.image.name!r} "
          f"({device.image.image_hash[:12]}..., "
          f"{device.image.code_size} B text)")
    print(f"attached {instances} instances "
          f"({args.tenants} tenants x {args.instances}) "
          f"in {attach_s * 1e3:.2f} ms on {board.name} [{args.impl}]")
    if args.impl == "jit":
        print(f"compiled templates shared: {device.shared_templates()} "
              f"(for {instances} instances)")
    print(f"image cache: {stats['hits']} hits / {stats['misses']} misses "
          f"({stats['template_entries']} templates, "
          f"{stats['report_entries']} verdicts cached)")
    print(f"{args.fires} fires -> {runs} container runs "
          f"in {fire_s * 1e3:.2f} ms "
          f"({runs / fire_s:.0f} runs/s wall)")
    print(f"virtual clock: {device.kernel.clock.cycles} cycles "
          f"= {board.us(device.kernel.clock.cycles):.1f} us modelled")
    return 0


def _resolve_spec(argument: str):
    """A deployment spec: a JSON file path or a builtin spec name."""
    import json

    from repro.deploy import BUILTIN_SPECS, DeploymentSpec, builtin_spec

    path = Path(argument)
    if path.exists():
        return DeploymentSpec.from_json(json.loads(path.read_text()))
    if argument in BUILTIN_SPECS:
        return builtin_spec(argument)
    raise FileNotFoundError(
        f"{argument!r} is neither a spec file nor a builtin spec "
        f"(builtins: {', '.join(sorted(BUILTIN_SPECS))})"
    )


def cmd_deploy(args: argparse.Namespace) -> int:
    """Converge a fresh device onto a declarative deployment spec."""
    from repro.core import HostingEngine
    from repro.deploy import apply, plan
    from repro.rtos import Kernel

    try:
        spec = _resolve_spec(args.spec)
    except Exception as error:
        print(f"deploy error: {error}")
        return 1
    board = board_by_name(args.board)
    engine = HostingEngine(Kernel(board), implementation=args.impl)

    try:
        deployment = plan(engine, spec)
        print(f"spec {spec.name!r} -> {len(deployment.actions)} actions "
              f"on {board.name} [{args.impl}]:")
        print(deployment.describe())
        result = apply(engine, deployment)
    except Exception as error:
        print(f"deploy error: {error}")
        return 1
    print(f"applied: {len(result.attached)} containers attached, "
          f"{len(result.tenants_created)} tenants created, "
          f"{result.cycles_charged} cycles charged "
          f"({board.us(result.cycles_charged):.1f} us modelled)")
    replan = plan(engine, spec)
    print(f"re-plan: {len(replan.actions)} actions "
          f"({'converged' if replan.empty else 'NOT converged'})")
    return 0 if replan.empty else 1


def cmd_fleet(args: argparse.Namespace) -> int:
    """Roll one spec out across N devices; report the cache-warm speedup."""
    from repro.deploy import Fleet, fanout_spec
    from repro.vm.imagecache import IMAGE_CACHE

    IMAGE_CACHE.clear()  # measure from a cold cache, deterministically
    try:
        boards = [board_by_name(args.board) for _ in range(args.devices)]
        fleet = Fleet(boards, implementation=args.impl)
        spec = fanout_spec(tenants=args.tenants,
                           instances_per_tenant=args.instances)
        rollout = fleet.apply(spec)
    except Exception as error:
        print(f"fleet error: {error}")
        return 1

    image = next(iter(spec.images.values()))
    print(f"spec {spec.name!r}: {args.tenants} tenants x {args.instances} "
          f"instances of {image.image_hash[:12]}... per device")
    print(f"{'device':8} {'board':14} {'actions':>7} {'wall ms':>8} "
          f"{'cycles':>8} {'cache':>12}")
    for device_rollout in rollout.devices:
        print(f"{device_rollout.device.name:8} "
              f"{device_rollout.device.board.name:14} "
              f"{device_rollout.actions:>7} "
              f"{device_rollout.wall_s * 1e3:>8.2f} "
              f"{device_rollout.cycles_charged:>8} "
              f"{device_rollout.cache_hits:>4} hits/"
              f"{device_rollout.cache_misses} miss")
    speedups = rollout.speedups()
    if speedups:
        print("warm-rollout speedup over dev0: "
              + ", ".join(f"{s:.1f}x" for s in speedups))
    cycles = rollout.cycles_per_device()
    print("modelled cycles identical across devices: "
          f"{len(set(cycles)) == 1}")
    print(f"fleet cache hit rate: {rollout.cache_hit_rate() * 100:.0f}%  "
          f"fleet RAM: {fleet.total_ram_bytes()} B "
          f"({len(fleet.containers())} containers on {len(fleet)} devices)")
    return 0


def _canary_specs():
    """Baseline, poisoned and fixed specs for the canary demo.

    All three share the periodic sensor slot and a fan-out pad; they
    differ only in the image of the ``worker`` slots.  The poisoned
    image passes the pre-flight verifier (it is well-formed bytecode)
    but dereferences an unmapped address at runtime — exactly the class
    of fault only a canary bake can catch.
    """
    from repro.core.hooks import FC_HOOK_FANOUT, FC_HOOK_TIMER, HookMode
    from repro.deploy import (
        AttachmentSpec,
        DeploymentSpec,
        HookSpec,
        ImageSpec,
    )
    from repro.vm import assemble

    good = ImageSpec.from_program(
        assemble("mov r0, 7\n    exit", name="worker-v1"))
    poisoned = ImageSpec.from_program(assemble(
        "lddw r1, 0x10\n    ldxb r0, [r1]\n    exit", name="worker-v2-bad"))
    fixed = ImageSpec.from_program(
        assemble("mov r0, 8\n    exit", name="worker-v2"))
    sensor = ImageSpec.from_program(
        assemble("mov r0, 21\n    lsh r0, 1\n    exit", name="sensor"))

    def spec(name: str, image: ImageSpec) -> DeploymentSpec:
        return DeploymentSpec(
            name=name,
            tenants=("ops",),
            hooks=(HookSpec(FC_HOOK_FANOUT, HookMode.SYNC),),
            images={"worker": image, "sensor": sensor},
            attachments=(
                AttachmentSpec(image="worker", hook=FC_HOOK_FANOUT,
                               tenant="ops", name="worker", count=2),
                AttachmentSpec(image="sensor", hook=FC_HOOK_TIMER,
                               tenant="ops", name="sensor",
                               period_us=250_000.0),
            ),
        )

    return spec("canary-base", good), spec("canary-bad", poisoned), \
        spec("canary-fix", fixed)


def cmd_canary(args: argparse.Namespace) -> int:
    """Canary fleet rollout: poisoned spec rolls back, clean one promotes."""
    from repro.deploy import Fleet, plan
    from repro.vm.imagecache import IMAGE_CACHE

    IMAGE_CACHE.clear()  # measure from a cold cache, deterministically
    try:
        if not 1 <= args.canaries <= args.devices:
            raise ValueError(
                f"--canaries {args.canaries} outside 1..{args.devices}"
            )
        boards = [board_by_name(args.board) for _ in range(args.devices)]
        fleet = Fleet(boards, implementation=args.impl)
        base, poisoned, fixed = _canary_specs()
        fleet.apply(base)
    except Exception as error:
        print(f"canary error: {error}")
        return 1
    print(f"fleet of {args.devices} x {args.board} converged on "
          f"{base.name!r} [{args.impl}]")

    control = fleet.devices[args.canaries:]
    cycles_before = [device.kernel.clock.cycles for device in control]

    print(f"\nstage 1: roll out {poisoned.name!r} "
          "(verifies clean, faults at runtime)")
    bad = fleet.canary_rollout(poisoned, canary_count=args.canaries,
                               bake_us=args.bake_us, bake_fires=args.fires)
    print(f"  canaries: {', '.join(bad.canary_names)}  "
          f"bake: {bad.bake_us:.0f} us virtual + {args.fires} hook fires")
    print(f"  -> {'ROLLED BACK' if bad.rolled_back else 'PROMOTED'}: "
          f"{bad.reason}")
    untouched = cycles_before == [device.kernel.clock.cycles
                                  for device in control]
    restored = all(plan(rollback.device.engine, base).empty
                   for rollback in bad.rollback)
    print(f"  non-canary devices untouched: {untouched} "
          f"({len(control)} devices, 0 actions applied)")
    print(f"  canaries reconverged on {base.name!r}: {restored}")

    print(f"\nstage 2: roll out {fixed.name!r} (the fix)")
    good = fleet.canary_rollout(fixed, canary_count=args.canaries,
                                bake_us=args.bake_us, bake_fires=args.fires)
    print(f"  -> {'PROMOTED' if good.promoted else 'ROLLED BACK'}: "
          f"{good.reason}")
    converged = all(plan(device.engine, fixed).empty
                    for device in fleet.devices)
    print(f"  fleet converged on {fixed.name!r}: {converged}")
    speedups = good.promotion_speedups()
    if speedups:
        print("  promotion speedup over cold canary: "
              + ", ".join(f"{speedup:.1f}x" for speedup in speedups))
    ok = (bad.rolled_back and untouched and restored
          and good.promoted and converged)
    return 0 if ok else 1


def cmd_publish(args: argparse.Namespace) -> int:
    """Fleet-wide OTA publish demo: radio fan-out, replay, canary gate."""
    from repro.deploy import plan
    from repro.scenarios import build_fleet_publisher
    from repro.vm.imagecache import IMAGE_CACHE

    IMAGE_CACHE.clear()  # measure from a cold cache, deterministically
    try:
        if not 1 <= args.canaries <= args.devices:
            raise ValueError(
                f"--canaries {args.canaries} outside 1..{args.devices}"
            )
        boards = [board_by_name(args.board) for _ in range(args.devices)]
        publisher = build_fleet_publisher(
            boards=boards, implementation=args.impl, loss=args.loss,
            seed=args.seed)
    except Exception as error:
        print(f"publish error: {error}")
        return 1
    from repro.deploy import PublishOptions

    fleet = publisher.fleet
    base, poisoned, fixed = _canary_specs()
    canary_options = PublishOptions(canary_count=args.canaries,
                                    bake_us=args.bake_us,
                                    bake_fires=args.fires)

    def table(result) -> None:
        print(f"{'device':8} {'role':9} {'status':17} {'actions':>7} "
              f"{'wall ms':>8} {'cache':>12}")
        for row in result.devices:
            print(f"{row.device.name:8} {row.role:9} "
                  f"{row.result.status.value:17} {row.actions:>7} "
                  f"{row.wall_s * 1e3:>8.2f} "
                  f"{row.cache_hits:>4} hits/{row.cache_misses} miss")

    print(f"stage 1: publish {base.name!r} to all {args.devices} devices "
          f"(one signed manifest, seq {publisher.sequence + 1})")
    rollout = publisher.publish(base)
    table(rollout)
    speedups = rollout.speedups()
    if speedups:
        print("  cache-warm convergence speedup over dev0: "
              + ", ".join(f"{s:.1f}x" for s in speedups))
    converged = all(plan(device.engine, base).empty
                    for device in fleet.devices)
    print(f"  fleet converged off one publish: {converged}")

    print("\nstage 2: replay the same sequence (anti-rollback, per device)")
    replay = publisher.publish(
        base, PublishOptions(sequence_number=rollout.sequence_number))
    refused = all(row.result.status.value == "sequence-replay"
                  for row in replay.devices)
    print(f"  refused fleet-wide: {refused}")

    print("\nstage 3: republish the same spec under a new sequence")
    republish = publisher.publish(base)
    idempotent = (republish.converged
                  and all(row.actions == 0 for row in republish.devices))
    print(f"  idempotent (zero actions everywhere): {idempotent}")

    print(f"\nstage 4: canary publish of {poisoned.name!r} "
          f"({args.canaries} canaries, health-gated)")
    bad = publisher.publish(poisoned, canary_options)
    print(f"  -> {'ROLLED BACK' if bad.rolled_back else 'PROMOTED'}: "
          f"{bad.reason}")
    controls = fleet.devices[args.canaries:]
    untouched = all(
        all(res.manifest is None or res.manifest.name != poisoned.name
            for res in device.radio.worker.results)
        for device in controls)
    print(f"  control devices never saw the poisoned manifest: {untouched}")

    print(f"\nstage 5: canary publish of {fixed.name!r} (the fix)")
    good = publisher.publish(fixed, canary_options)
    print(f"  -> {'PROMOTED' if good.promoted else 'ROLLED BACK'}: "
          f"{good.reason}")
    fixed_converged = all(plan(device.engine, fixed).empty
                          for device in fleet.devices)
    print(f"  fleet converged on {fixed.name!r}: {fixed_converged}")
    ok = (rollout.converged
          and (len(fleet.devices) < 2 or bool(speedups))
          and refused and idempotent
          and bad.rolled_back and untouched and good.promoted
          and fixed_converged)
    return 0 if ok else 1


def cmd_chaos(args: argparse.Namespace) -> int:
    """Chaos-hardened publish demo: crashes, loss bursts, self-healing."""
    from repro.deploy import CrashAt, FaultInjector, PublishOptions
    from repro.scenarios import build_fleet_publisher
    from repro.vm.imagecache import IMAGE_CACHE

    IMAGE_CACHE.clear()
    try:
        boards = [board_by_name(args.board) for _ in range(args.devices)]
        publisher = build_fleet_publisher(
            boards=boards, implementation=args.impl, loss=args.loss,
            seed=args.seed)
    except Exception as error:
        print(f"chaos error: {error}")
        return 1
    names = [device.name for device in publisher.fleet.devices]
    plan = FaultInjector.random_plan(
        names, seed=args.seed, horizon_us=args.horizon_us,
        crashes=args.crashes, bursts=args.bursts, stalls=args.stalls)
    publisher.chaos = injector = FaultInjector(plan)
    base, _, _ = _canary_specs()

    def table(result) -> None:
        print(f"{'device':8} {'status':17} {'retries':>7} {'reboots':>7} "
              f"{'wall ms':>8}")
        for row in result.devices:
            print(f"{row.device.name:8} {row.result.status.value:17} "
                  f"{row.retries:>7} {row.reboots:>7} "
                  f"{row.wall_s * 1e3:>8.2f}")

    print(f"stage 1: publish {base.name!r} to {args.devices} devices at "
          f"{args.loss:.0%} frame loss under a seeded fault plan "
          f"(seed {args.seed}: {args.crashes} crashes, {args.bursts} loss "
          f"bursts, {args.stalls} stalls)")
    for event in plan:
        print(f"  t={event.at_us / 1e3:8.1f}ms  {event}")
    rollout = publisher.publish(base)
    table(rollout)
    print(f"  converged: {rollout.converged}  "
          f"(reboots {rollout.total_reboots}, "
          f"re-triggers {rollout.total_retries})")
    print(f"  injector: crashes={injector.crashes} "
          f"reboots={injector.reboots} bursts={injector.bursts} "
          f"stalls={injector.stalls} quiescent={injector.quiescent}")

    print("\nstage 2: crash one device for good (it never reboots)")
    publisher.chaos = FaultInjector(
        [CrashAt(names[-1], at_us=1_000.0, down_us=None)])
    partial = publisher.publish(base, PublishOptions(max_windows=300))
    table(partial)
    unreachable = [row.device.name for row in partial.unreachable()]
    print(f"  converged: {partial.converged} "
          f"(unreachable: {', '.join(unreachable) or 'none'})")
    print("  degraded gracefully instead of raising: True")
    ok = (rollout.converged
          and injector.quiescent
          and not partial.converged
          and unreachable == [names[-1]]
          and all(row.ok for row in partial.devices
                  if row.device.name != names[-1]))
    return 0 if ok else 1


def cmd_controlplane(args: argparse.Namespace) -> int:
    """Control-plane demo: submit → publish → register/evict → status."""
    from repro.scenarios import build_control_plane
    from repro.vm.imagecache import IMAGE_CACHE

    IMAGE_CACHE.clear()  # measure from a cold cache, deterministically
    try:
        boards = [board_by_name(args.board) for _ in range(args.devices)]
        plane = build_control_plane(boards=boards, implementation=args.impl,
                                    loss=args.loss, seed=args.seed)
    except Exception as error:
        print(f"controlplane error: {error}")
        return 1
    base, _, fixed = _canary_specs()

    release = plane.submit(base)
    print(f"submitted release {release.name} "
          f"({len(release.envelope)} B envelope, "
          f"{len(release.payload)} B payload)")
    result = plane.publish(release)
    print(f"published via {'multicast' if result.multicast else 'unicast'} "
          f"trigger ({result.trigger_tx_bytes} B trigger airtime; "
          f"ack sample: {', '.join(result.mcast_acks) or 'none'})")
    print(f"  converged: {result.ok} "
          f"({len(result.rows())} devices, {result.wall_s * 1e3:.1f} ms wall)")

    late = plane.register()
    print(f"\nregistered {late.name} at runtime (fleet size {len(plane)})")
    update = plane.publish(fixed)
    print(f"published {fixed.name!r} (seq {update.sequence_number}) "
          f"-> converged: {update.ok} on {len(update.rows())} devices")
    evicted = plane.evict(late.name)
    print(f"evicted {evicted.name} (fleet size {len(plane)})")

    print(f"\n{'device':8} {'board':12} {'seq':>4} {'spec':12} "
          f"{'reboots':>7} {'cycles':>12}")
    rows = list(plane.status())
    for row in rows:
        print(f"{row.name:8} {row.board:12} {row.sequence:>4} "
              f"{str(row.spec):12} {row.reboots:>7} {row.cycles:>12}")
    consistent = all(row.sequence == update.sequence_number for row in rows)
    print(f"status rows consistent with last release: {consistent}")
    ok = result.ok and update.ok and consistent
    return 0 if ok else 1


def _fleet_parent() -> argparse.ArgumentParser:
    """Shared options for the fleet-shaped subcommands.

    ``fleet``, ``canary``, ``publish``, ``chaos`` and ``controlplane``
    all drive N simulated devices; this parent makes ``--devices``,
    ``--seed``, ``--loss``, ``--board`` and ``--impl`` spell and
    default identically across them.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--devices", type=int, default=4,
                        help="fleet size (default 4)")
    parent.add_argument("--seed", type=int, default=1234,
                        help="deterministic seed for radio loss dice, "
                             "suppression lotteries and fault plans")
    parent.add_argument("--loss", type=float, default=0.0,
                        help="radio frame-loss probability")
    parent.add_argument("--board", default="cortex-m4",
                        choices=sorted(BOARDS))
    parent.add_argument("--impl", default="jit",
                        choices=sorted(_VM_FACTORIES))
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Femto-Containers reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)
    fleet_parent = _fleet_parent()

    p_asm = sub.add_parser("asm", help="assemble eBPF text")
    p_asm.add_argument("source")
    p_asm.add_argument("-o", "--output")
    p_asm.set_defaults(fn=cmd_asm)

    p_cc = sub.add_parser("compile", help="compile femtoC source to eBPF")
    p_cc.add_argument("source")
    p_cc.add_argument("-o", "--output")
    p_cc.add_argument("-S", "--emit-asm", action="store_true",
                      help="emit assembly text instead of bytecode")
    p_cc.set_defaults(fn=cmd_compile)

    p_dis = sub.add_parser("disasm", help="disassemble bytecode")
    p_dis.add_argument("image")
    p_dis.set_defaults(fn=cmd_disasm)

    p_ver = sub.add_parser("verify", help="pre-flight check a program")
    p_ver.add_argument("image")
    p_ver.set_defaults(fn=cmd_verify)

    p_run = sub.add_parser("run", help="execute a program on a board model")
    p_run.add_argument("image")
    p_run.add_argument("--ctx", help="context struct as hex bytes")
    p_run.add_argument("--board", default="cortex-m4", choices=sorted(BOARDS))
    p_run.add_argument("--impl", default="femto-containers",
                       choices=sorted(_VM_FACTORIES))
    p_run.set_defaults(fn=cmd_run)

    p_boards = sub.add_parser("boards", help="list board models")
    p_boards.set_defaults(fn=cmd_boards)

    p_demo = sub.add_parser("demo", help="run the multi-tenant showcase")
    p_demo.set_defaults(fn=cmd_demo)

    p_fan = sub.add_parser(
        "fanout",
        help="multi-instance fan-out: K tenants x M instances of one image")
    p_fan.add_argument("--tenants", type=int, default=2)
    p_fan.add_argument("--instances", type=int, default=4,
                       help="instances per tenant")
    p_fan.add_argument("--fires", type=int, default=100,
                       help="hook firings to drive through the fan-out")
    p_fan.add_argument("--board", default="cortex-m4", choices=sorted(BOARDS))
    p_fan.add_argument("--impl", default="jit",
                       choices=sorted(_VM_FACTORIES))
    p_fan.set_defaults(fn=cmd_fanout)

    p_deploy = sub.add_parser(
        "deploy",
        help="plan+apply a declarative deployment spec on a fresh device")
    p_deploy.add_argument("spec",
                          help="spec JSON file or builtin name "
                               "(multi-tenant, fanout, wasm-checksum, "
                               "script-checksum, runtime-matrix)")
    p_deploy.add_argument("--board", default="cortex-m4",
                          choices=sorted(BOARDS))
    p_deploy.add_argument("--impl", default="femto-containers",
                          choices=sorted(_VM_FACTORIES))
    p_deploy.set_defaults(fn=cmd_deploy)

    p_fleet = sub.add_parser(
        "fleet", parents=[fleet_parent],
        help="apply one spec across N devices through the shared cache")
    p_fleet.add_argument("--tenants", type=int, default=2)
    p_fleet.add_argument("--instances", type=int, default=4,
                         help="instances per tenant")
    p_fleet.set_defaults(fn=cmd_fleet)

    p_canary = sub.add_parser(
        "canary", parents=[fleet_parent],
        help="canary fleet rollout: poisoned spec rolls back on the "
             "canary subset, the fixed spec promotes fleet-wide")
    p_canary.add_argument("--canaries", type=int, default=2,
                          help="devices in the canary subset")
    p_canary.add_argument("--bake-us", type=float, default=2_000_000.0,
                          help="virtual bake duration per canary (us)")
    p_canary.add_argument("--fires", type=int, default=5,
                          help="extra hook firings during the bake")
    p_canary.set_defaults(fn=cmd_canary)

    p_publish = sub.add_parser(
        "publish", parents=[fleet_parent],
        help="fleet-wide OTA publish over a shared radio link: fan-out, "
             "anti-rollback replay, idempotent republish, health-gated "
             "canary stage")
    p_publish.add_argument("--canaries", type=int, default=1,
                           help="devices in the canary subset")
    p_publish.add_argument("--bake-us", type=float, default=1_000_000.0,
                           help="virtual bake duration per canary (us)")
    p_publish.add_argument("--fires", type=int, default=3,
                           help="extra hook firings during the bake")
    p_publish.set_defaults(fn=cmd_publish)

    p_chaos = sub.add_parser(
        "chaos", parents=[fleet_parent],
        help="chaos-hardened publish: seeded crashes, loss bursts and "
             "stalls during a fleet OTA publish, plus a permanently dead "
             "device that degrades the result instead of raising")
    p_chaos.add_argument("--crashes", type=int, default=2)
    p_chaos.add_argument("--bursts", type=int, default=1,
                         help="link loss bursts in the plan")
    p_chaos.add_argument("--stalls", type=int, default=1)
    p_chaos.add_argument("--horizon-us", type=float, default=400_000.0,
                         help="virtual window the faults land in (us)")
    p_chaos.set_defaults(fn=cmd_chaos)

    p_plane = sub.add_parser(
        "controlplane", parents=[fleet_parent],
        help="maintainer control plane: submit a signed release, publish "
             "it with the fleet-scale profile (multicast trigger, sharded "
             "co-run), register/evict devices at runtime, stream "
             "per-device status rows")
    p_plane.set_defaults(fn=cmd_controlplane)

    p_shell = sub.add_parser(
        "shell", help="run device-shell commands on the showcase device")
    p_shell.add_argument("commands", nargs="*",
                         help="commands to run (default: a status tour)")
    p_shell.set_defaults(fn=cmd_shell)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - module CLI entry
    sys.exit(main())
