"""Command-line interface: ``python -m repro <command>``.

Small developer tools around the library:

* ``asm IN.s [-o OUT.bin]``     — assemble eBPF text to bytecode;
* ``disasm IN.bin``             — disassemble bytecode to text;
* ``verify IN.bin``             — run the pre-flight checker;
* ``run IN.s|IN.bin [--ctx HEX] [--board NAME] [--impl NAME]``
                                — execute a program on a simulated board;
* ``boards``                    — list board models;
* ``demo``                      — run the multi-tenant showcase scenario;
* ``fanout``                    — multi-instance fan-out: K tenants x M
                                  instances of one image on one hook,
                                  reporting attach times and image-cache
                                  hit rates;
* ``deploy SPEC``               — declarative deployment: plan+apply a
                                  spec (JSON file or builtin name) onto a
                                  fresh device, then re-plan to show
                                  convergence;
* ``fleet``                     — apply one spec across N simulated
                                  devices, reporting the warm-rollout
                                  speedup from the shared image cache.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.rtos.board import BOARDS, board_by_name
from repro.vm import (
    CertFCInterpreter,
    Interpreter,
    Program,
    RbpfInterpreter,
    VerificationError,
    VMFault,
    assemble,
    compile_program,
    disassemble,
    verify,
)

_VM_FACTORIES = {
    "femto-containers": Interpreter,
    "rbpf": RbpfInterpreter,
    "certfc": CertFCInterpreter,
    "jit": compile_program,
}


def _load_program(path: Path) -> Program:
    data = path.read_bytes()
    if path.suffix in (".s", ".asm", ".txt") or not _looks_binary(data):
        return assemble(data.decode(), name=path.stem)
    return Program.from_bytes(data, name=path.stem)


def _looks_binary(data: bytes) -> bool:
    return any(byte < 9 for byte in data[:64])


def cmd_asm(args: argparse.Namespace) -> int:
    program = assemble(Path(args.source).read_text(),
                       name=Path(args.source).stem)
    raw = program.to_bytes()
    if args.output:
        Path(args.output).write_bytes(raw)
        print(f"{len(program.slots)} slots, {len(raw)} bytes -> {args.output}")
    else:
        sys.stdout.write(raw.hex() + "\n")
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    from repro.femtoc import CompileError, compile_source

    try:
        program = compile_source(Path(args.source).read_text(),
                                 name=Path(args.source).stem)
    except CompileError as error:
        print(f"compile error: {error}")
        return 1
    if args.emit_asm:
        sys.stdout.write(disassemble(program))
        return 0
    raw = program.to_bytes()
    if args.output:
        Path(args.output).write_bytes(raw)
        print(f"{len(program.slots)} slots, {len(raw)} bytes -> {args.output}")
    else:
        sys.stdout.write(raw.hex() + "\n")
    return 0


def cmd_disasm(args: argparse.Namespace) -> int:
    program = _load_program(Path(args.image))
    sys.stdout.write(disassemble(program))
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    program = _load_program(Path(args.image))
    try:
        report = verify(program)
    except VerificationError as error:
        print(f"REJECTED: {error}")
        return 1
    print(f"OK: {report.instruction_count} instructions, "
          f"{report.branch_count} branches, "
          f"helpers: {sorted(hex(h) for h in report.helper_ids) or 'none'}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    program = _load_program(Path(args.image))
    board = board_by_name(args.board)
    factory = _VM_FACTORIES[args.impl]
    vm = factory(program)
    context = bytes.fromhex(args.ctx) if args.ctx else None
    try:
        result = vm.run(context=context)
    except VMFault as fault:
        print(f"FAULT: {type(fault).__name__}: {fault}")
        return 1
    cycles = board.vm_execution_cycles(result.stats, vm.implementation)
    print(f"r0 = {result.value} (0x{result.value:x})")
    print(f"{result.stats.executed} instructions, "
          f"{result.stats.branches_taken} taken branches")
    print(f"{cycles} cycles on {board.name} = {board.us(cycles):.2f} us "
          f"@ {board.mhz} MHz [{args.impl}]")
    return 0


def cmd_boards(_args: argparse.Namespace) -> int:
    for name in BOARDS:
        board = board_by_name(name)
        print(f"{name:10s} {board.cpu:40s} {board.mhz} MHz  "
              f"{board.ram_kib} KiB RAM  {board.flash_kib} KiB flash")
    return 0


def cmd_shell(args: argparse.Namespace) -> int:
    """Run device-shell commands against the showcase scenario."""
    from repro.rtos.shell import DeviceShell
    from repro.scenarios import build_multi_tenant_device

    device = build_multi_tenant_device(sensor_period_us=500_000)
    device.kernel.run(until_us=2_000_000)
    shell = DeviceShell(device.engine)
    commands = args.commands or ["uptime", "ps", "hooks", "fc list", "ram"]
    for command in commands:
        print(f"> {command}")
        print(shell.execute(command))
        print()
    return 0


def cmd_demo(_args: argparse.Namespace) -> int:
    from repro.net import CoapMessage, coap
    from repro.scenarios import (
        COAP_PORT,
        DEVICE_ADDR,
        build_multi_tenant_device,
    )

    device = build_multi_tenant_device(sensor_period_us=500_000)
    device.kernel.run(until_us=2_000_000)
    replies = []
    request = CoapMessage(mtype=coap.CON, code=coap.GET)
    request.add_uri_path("/sensor/temp")
    device.client.request(DEVICE_ADDR, COAP_PORT, request, replies.append)
    device.kernel.run(until_us=device.kernel.now_us + 2_000_000)
    print(f"containers: {[c.name for c in device.engine.containers()]}")
    print(f"sensor average over CoAP: {replies[0].payload.decode()} "
          "centi-degC")
    print(f"context switches observed by tenant B: "
          f"{sum(device.engine.global_store.snapshot().values())}")
    print(f"engine RAM: {device.engine.total_ram_bytes()} B")
    return 0


def cmd_fanout(args: argparse.Namespace) -> int:
    """Run the multi-instance fan-out scenario and report cache effect."""
    import time

    from repro.scenarios import build_fanout_device
    from repro.vm.imagecache import IMAGE_CACHE

    IMAGE_CACHE.clear()  # measure from a cold cache, deterministically
    board = board_by_name(args.board)

    start = time.perf_counter()
    device = build_fanout_device(
        tenants=args.tenants,
        instances_per_tenant=args.instances,
        implementation=args.impl,
        board=board,
    )
    attach_s = time.perf_counter() - start

    start = time.perf_counter()
    runs = device.fire(args.fires)
    fire_s = time.perf_counter() - start

    instances = len(device.containers)
    stats = IMAGE_CACHE.stats()
    print(f"image: {device.image.name!r} "
          f"({device.image.image_hash[:12]}..., "
          f"{device.image.code_size} B text)")
    print(f"attached {instances} instances "
          f"({args.tenants} tenants x {args.instances}) "
          f"in {attach_s * 1e3:.2f} ms on {board.name} [{args.impl}]")
    if args.impl == "jit":
        print(f"compiled templates shared: {device.shared_templates()} "
              f"(for {instances} instances)")
    print(f"image cache: {stats['hits']} hits / {stats['misses']} misses "
          f"({stats['template_entries']} templates, "
          f"{stats['report_entries']} verdicts cached)")
    print(f"{args.fires} fires -> {runs} container runs "
          f"in {fire_s * 1e3:.2f} ms "
          f"({runs / fire_s:.0f} runs/s wall)")
    print(f"virtual clock: {device.kernel.clock.cycles} cycles "
          f"= {board.us(device.kernel.clock.cycles):.1f} us modelled")
    return 0


def _resolve_spec(argument: str):
    """A deployment spec: a JSON file path or a builtin spec name."""
    import json

    from repro.deploy import BUILTIN_SPECS, DeploymentSpec, builtin_spec

    path = Path(argument)
    if path.exists():
        return DeploymentSpec.from_json(json.loads(path.read_text()))
    if argument in BUILTIN_SPECS:
        return builtin_spec(argument)
    raise FileNotFoundError(
        f"{argument!r} is neither a spec file nor a builtin spec "
        f"(builtins: {', '.join(sorted(BUILTIN_SPECS))})"
    )


def cmd_deploy(args: argparse.Namespace) -> int:
    """Converge a fresh device onto a declarative deployment spec."""
    from repro.core import HostingEngine
    from repro.deploy import apply, plan
    from repro.rtos import Kernel

    try:
        spec = _resolve_spec(args.spec)
    except Exception as error:
        print(f"deploy error: {error}")
        return 1
    board = board_by_name(args.board)
    engine = HostingEngine(Kernel(board), implementation=args.impl)

    try:
        deployment = plan(engine, spec)
        print(f"spec {spec.name!r} -> {len(deployment.actions)} actions "
              f"on {board.name} [{args.impl}]:")
        print(deployment.describe())
        result = apply(engine, deployment)
    except Exception as error:
        print(f"deploy error: {error}")
        return 1
    print(f"applied: {len(result.attached)} containers attached, "
          f"{len(result.tenants_created)} tenants created, "
          f"{result.cycles_charged} cycles charged "
          f"({board.us(result.cycles_charged):.1f} us modelled)")
    replan = plan(engine, spec)
    print(f"re-plan: {len(replan.actions)} actions "
          f"({'converged' if replan.empty else 'NOT converged'})")
    return 0 if replan.empty else 1


def cmd_fleet(args: argparse.Namespace) -> int:
    """Roll one spec out across N devices; report the cache-warm speedup."""
    from repro.deploy import Fleet, fanout_spec
    from repro.vm.imagecache import IMAGE_CACHE

    IMAGE_CACHE.clear()  # measure from a cold cache, deterministically
    try:
        boards = [board_by_name(args.board) for _ in range(args.devices)]
        fleet = Fleet(boards, implementation=args.impl)
        spec = fanout_spec(tenants=args.tenants,
                           instances_per_tenant=args.instances)
        rollout = fleet.apply(spec)
    except Exception as error:
        print(f"fleet error: {error}")
        return 1

    image = next(iter(spec.images.values()))
    print(f"spec {spec.name!r}: {args.tenants} tenants x {args.instances} "
          f"instances of {image.image_hash[:12]}... per device")
    print(f"{'device':8} {'board':14} {'actions':>7} {'wall ms':>8} "
          f"{'cycles':>8} {'cache':>12}")
    for device_rollout in rollout.devices:
        print(f"{device_rollout.device.name:8} "
              f"{device_rollout.device.board.name:14} "
              f"{device_rollout.actions:>7} "
              f"{device_rollout.wall_s * 1e3:>8.2f} "
              f"{device_rollout.cycles_charged:>8} "
              f"{device_rollout.cache_hits:>4} hits/"
              f"{device_rollout.cache_misses} miss")
    speedups = rollout.speedups()
    if speedups:
        print(f"warm-rollout speedup over dev0: "
              + ", ".join(f"{s:.1f}x" for s in speedups))
    cycles = rollout.cycles_per_device()
    print(f"modelled cycles identical across devices: "
          f"{len(set(cycles)) == 1}")
    print(f"fleet cache hit rate: {rollout.cache_hit_rate() * 100:.0f}%  "
          f"fleet RAM: {fleet.total_ram_bytes()} B "
          f"({len(fleet.containers())} containers on {len(fleet)} devices)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Femto-Containers reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p_asm = sub.add_parser("asm", help="assemble eBPF text")
    p_asm.add_argument("source")
    p_asm.add_argument("-o", "--output")
    p_asm.set_defaults(fn=cmd_asm)

    p_cc = sub.add_parser("compile", help="compile femtoC source to eBPF")
    p_cc.add_argument("source")
    p_cc.add_argument("-o", "--output")
    p_cc.add_argument("-S", "--emit-asm", action="store_true",
                      help="emit assembly text instead of bytecode")
    p_cc.set_defaults(fn=cmd_compile)

    p_dis = sub.add_parser("disasm", help="disassemble bytecode")
    p_dis.add_argument("image")
    p_dis.set_defaults(fn=cmd_disasm)

    p_ver = sub.add_parser("verify", help="pre-flight check a program")
    p_ver.add_argument("image")
    p_ver.set_defaults(fn=cmd_verify)

    p_run = sub.add_parser("run", help="execute a program on a board model")
    p_run.add_argument("image")
    p_run.add_argument("--ctx", help="context struct as hex bytes")
    p_run.add_argument("--board", default="cortex-m4", choices=sorted(BOARDS))
    p_run.add_argument("--impl", default="femto-containers",
                       choices=sorted(_VM_FACTORIES))
    p_run.set_defaults(fn=cmd_run)

    p_boards = sub.add_parser("boards", help="list board models")
    p_boards.set_defaults(fn=cmd_boards)

    p_demo = sub.add_parser("demo", help="run the multi-tenant showcase")
    p_demo.set_defaults(fn=cmd_demo)

    p_fan = sub.add_parser(
        "fanout",
        help="multi-instance fan-out: K tenants x M instances of one image")
    p_fan.add_argument("--tenants", type=int, default=2)
    p_fan.add_argument("--instances", type=int, default=4,
                       help="instances per tenant")
    p_fan.add_argument("--fires", type=int, default=100,
                       help="hook firings to drive through the fan-out")
    p_fan.add_argument("--board", default="cortex-m4", choices=sorted(BOARDS))
    p_fan.add_argument("--impl", default="jit",
                       choices=sorted(_VM_FACTORIES))
    p_fan.set_defaults(fn=cmd_fanout)

    p_deploy = sub.add_parser(
        "deploy",
        help="plan+apply a declarative deployment spec on a fresh device")
    p_deploy.add_argument("spec",
                          help="spec JSON file or builtin name "
                               "(multi-tenant, fanout)")
    p_deploy.add_argument("--board", default="cortex-m4",
                          choices=sorted(BOARDS))
    p_deploy.add_argument("--impl", default="femto-containers",
                          choices=sorted(_VM_FACTORIES))
    p_deploy.set_defaults(fn=cmd_deploy)

    p_fleet = sub.add_parser(
        "fleet",
        help="apply one spec across N devices through the shared cache")
    p_fleet.add_argument("--devices", type=int, default=4)
    p_fleet.add_argument("--tenants", type=int, default=2)
    p_fleet.add_argument("--instances", type=int, default=4,
                         help="instances per tenant")
    p_fleet.add_argument("--board", default="cortex-m4",
                         choices=sorted(BOARDS))
    p_fleet.add_argument("--impl", default="jit",
                         choices=sorted(_VM_FACTORIES))
    p_fleet.set_defaults(fn=cmd_fleet)

    p_shell = sub.add_parser(
        "shell", help="run device-shell commands on the showcase device")
    p_shell.add_argument("commands", nargs="*",
                         help="commands to run (default: a status tour)")
    p_shell.set_defaults(fn=cmd_shell)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - module CLI entry
    sys.exit(main())
