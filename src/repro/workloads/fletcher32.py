"""Fletcher32 over a 360 B input — the paper's computational benchmark.

"Each implementation is loaded with a VM hosting logic performing a
Fletcher32 checksum on a 360 B input string.  We reason that this computing
load roughly mimics the instruction complexity of intensive sensor data
(pre-)processing on-board." (§6)

The eBPF version below is written the way LLVM lowers the C reference for
the eBPF target at moderate optimisation: guarded entry, byte loads
assembled into 16-bit words (the target has no alignment guarantees on the
input buffer), and the modulo-reduction step after each 359-word block.
"""

from __future__ import annotations

import struct

from repro.vm.asm import assemble
from repro.vm.interpreter import ExecutionResult, Interpreter
from repro.vm.memory import Permission
from repro.vm.program import Program

#: Virtual address at which the input buffer is granted to the VM.
INPUT_BASE = 0x7000_0000

_LOREM = (
    b"Lorem ipsum dolor sit amet, consectetur adipiscing elit, sed do "
    b"eiusmod tempor incididunt ut labore et dolore magna aliqua. Ut enim "
    b"ad minim veniam, quis nostrud exercitation ullamco laboris nisi ut "
    b"aliquip ex ea commodo consequat. Duis aute irure dolor in "
    b"reprehenderit in voluptate velit esse cillum dolore eu fugiat nulla "
    b"pariatur. Excepteur sint occaecat."
)

#: The canonical 360-byte input string (§6's "360 B input string").
FLETCHER32_INPUT: bytes = (_LOREM + b" " * 360)[:360]

FLETCHER32_EBPF = """
; fletcher32 -- context: { u64 data_ptr, u64 n_bytes }
; returns the 32-bit checksum in r0
    jne   r1, 0, init
    mov   r0, 0
    exit
init:
    ldxdw r2, [r1+0]      ; r2 = data pointer
    ldxdw r3, [r1+8]      ; r3 = byte count
    rsh   r3, 1           ; r3 = 16-bit word count
    mov   r4, 0xffff      ; sum1
    mov   r5, 0xffff      ; sum2
outer:
    jeq   r3, 0, finish
    mov   r6, 359         ; tlen = min(words, 359)
    jge   r3, r6, block
    mov   r6, r3
block:
    sub   r3, r6
loop:
    ldxb  r0, [r2+0]      ; assemble one little-endian 16-bit word
    ldxb  r7, [r2+1]
    lsh   r7, 8
    or    r0, r7
    add   r4, r0          ; sum1 += word
    add   r5, r4          ; sum2 += sum1
    add   r2, 2
    sub   r6, 1
    jne   r6, 0, loop
    mov   r7, r4          ; sum1 = (sum1 & 0xffff) + (sum1 >> 16)
    rsh   r7, 16
    and   r4, 0xffff
    add   r4, r7
    mov   r7, r5          ; sum2 = (sum2 & 0xffff) + (sum2 >> 16)
    rsh   r7, 16
    and   r5, 0xffff
    add   r5, r7
    ja    outer
finish:
    mov   r7, r4          ; final reductions
    rsh   r7, 16
    and   r4, 0xffff
    add   r4, r7
    mov   r7, r5
    rsh   r7, 16
    and   r5, 0xffff
    add   r5, r7
    lsh   r5, 16
    mov   r0, r5
    or    r0, r4          ; (sum2 << 16) | sum1
    exit
"""


def fletcher32_reference(data: bytes) -> int:
    """Reference implementation (the paper's "Native C" semantics)."""
    if len(data) % 2:
        data = data + b"\x00"
    sum1, sum2 = 0xFFFF, 0xFFFF
    words = len(data) // 2
    index = 0
    while words:
        block = min(words, 359)
        words -= block
        for _ in range(block):
            sum1 += data[index] | (data[index + 1] << 8)
            sum2 += sum1
            index += 2
        sum1 = (sum1 & 0xFFFF) + (sum1 >> 16)
        sum2 = (sum2 & 0xFFFF) + (sum2 >> 16)
    sum1 = (sum1 & 0xFFFF) + (sum1 >> 16)
    sum2 = (sum2 & 0xFFFF) + (sum2 >> 16)
    return (sum2 << 16) | sum1


#: Estimated native machine-instruction count for the Table 2 model:
#: ~9 instructions per 16-bit word plus setup, at the board's native CPI.
def native_instruction_estimate(data_len: int = len(FLETCHER32_INPUT)) -> int:
    return 9 * (data_len // 2) + 60


def fletcher32_program() -> Program:
    """Assemble the canonical eBPF fletcher32 application."""
    return assemble(FLETCHER32_EBPF, name="fletcher32")


def make_context(data_len: int = len(FLETCHER32_INPUT)) -> bytes:
    """Pack the {data_ptr, n_bytes} context struct."""
    return struct.pack("<QQ", INPUT_BASE, data_len)


def prepare_vm(vm: Interpreter, data: bytes = FLETCHER32_INPUT) -> Interpreter:
    """Grant the input buffer read-only to ``vm`` (the firewall pattern:
    the container may inspect the data but not modify it)."""
    vm.access_list.grant_bytes("fletcher-input", INPUT_BASE, data,
                               Permission.READ)
    return vm


def run_fletcher32(
    vm_class=Interpreter, data: bytes = FLETCHER32_INPUT, **vm_kwargs
) -> ExecutionResult:
    """Convenience one-shot: build, grant, run; returns the result."""
    vm = vm_class(fletcher32_program(), **vm_kwargs)
    prepare_vm(vm, data)
    return vm.run(context=make_context(len(data)))
