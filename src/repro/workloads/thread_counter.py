"""Listing 2 — the kernel-debug thread counter, in eBPF assembly.

The container is attached to the scheduler hook (a hot code path).  On
every context switch it receives ``{u64 previous, u64 next}`` and bumps a
per-thread activation counter in the *global* key-value store, exactly as
the paper's C source does::

    int pid_log(sched_ctx_t *ctx) {
        if (ctx->next != 0) {
            uint32_t counter;
            uint32_t thread_key = THREAD_START_KEY + ctx->next;
            bpf_fetch_global(thread_key, &counter);
            counter++;
            bpf_store_global(thread_key, counter);
        }
        return 0;
    }
"""

from __future__ import annotations

import struct

from repro.vm.asm import assemble
from repro.vm.program import Program

#: Key base for per-thread counters (Listing 2's THREAD_START_KEY).
THREAD_START_KEY = 0x0

THREAD_COUNTER_EBPF = """
; pid_log -- context: { u64 previous, u64 next }
    ldxdw r6, [r1+8]          ; r6 = ctx->next
    jne   r6, 0, work         ; zero pid means no next thread
    mov   r0, 0
    exit
work:
    mov   r7, 0x0             ; THREAD_START_KEY
    add   r7, r6              ; thread_key = base + next pid
    mov   r1, r7
    mov   r2, r10
    add   r2, 4               ; &counter (stack slot)
    call  bpf_fetch_global
    ldxw  r3, [r10+4]
    add   r3, 1               ; counter++
    stxw  [r10+4], r3
    mov   r1, r7
    ldxw  r2, [r10+4]
    call  bpf_store_global
    mov   r0, 0
    exit
"""


def thread_counter_program() -> Program:
    """Assemble the Listing 2 application."""
    return assemble(THREAD_COUNTER_EBPF, name="thread-counter")


def make_context(previous_pid: int, next_pid: int) -> bytes:
    """Pack the scheduler hook's ``sched_ctx_t``."""
    return struct.pack("<QQ", previous_pid, next_pid)
