"""§8.3, container 1: periodic sensor read + moving average.

Timer-triggered logic of tenant A: find the temperature sensor through
SAUL, read it, fold it into an exponential moving average, and publish both
the average and the raw sample into the *tenant* store — where tenant A's
CoAP container (and only tenant A's containers) can read them.
"""

from __future__ import annotations

from repro.vm.asm import assemble
from repro.vm.program import Program

#: Tenant-store key holding the moving average (centi-degrees).
KEY_SENSOR_AVG = 0x10
#: Tenant-store key holding the last raw sample.
KEY_SENSOR_RAW = 0x11

#: SAUL class id for temperature sensors (matches repro.rtos.saul).
SENSE_TEMP = 0x82

SENSOR_EBPF = """
; sensor_process -- timer-triggered; context unused
    mov   r1, 0x82            ; SAUL_SENSE_TEMP
    call  bpf_saul_reg_find_type
    jne   r0, 0, found
    mov   r0, 1               ; no sensor registered
    exit
found:
    mov   r1, r0              ; device handle
    mov   r2, r10
    add   r2, 16              ; phydat_t buffer on the stack
    call  bpf_saul_reg_read
    ldxh  r6, [r10+16]        ; raw centi-degrees sample
    mov   r1, 0x10            ; KEY_SENSOR_AVG
    mov   r2, r10
    add   r2, 24
    call  bpf_fetch_tenant
    ldxw  r7, [r10+24]        ; previous average
    jne   r7, 0, have_avg
    mov   r7, r6              ; first sample seeds the average
have_avg:
    mul   r7, 3               ; avg = (3*avg + sample) / 4
    add   r7, r6
    div   r7, 4
    mov   r1, 0x10
    mov   r2, r7
    call  bpf_store_tenant
    mov   r1, 0x11            ; KEY_SENSOR_RAW
    mov   r2, r6
    call  bpf_store_tenant
    mov   r0, 0
    exit
"""


def sensor_program() -> Program:
    """Assemble the sensor-processing application."""
    return assemble(SENSOR_EBPF, name="sensor-process")
