"""Canned workloads: the paper's example applications and benchmarks.

* :mod:`repro.workloads.fletcher32` — the §6/Table 2/Fig 9 checksum;
* :mod:`repro.workloads.thread_counter` — Listing 2 (kernel debug);
* :mod:`repro.workloads.sensor` — §8.3 sensor read + moving average;
* :mod:`repro.workloads.coap_handler` — §8.3 CoAP response formatter;
* :mod:`repro.workloads.microbench` — Fig 8 per-instruction programs.
"""

from repro.workloads.fletcher32 import (
    FLETCHER32_EBPF,
    FLETCHER32_INPUT,
    fletcher32_program,
    fletcher32_reference,
    run_fletcher32,
)
from repro.workloads.thread_counter import (
    THREAD_COUNTER_EBPF,
    THREAD_START_KEY,
    thread_counter_program,
)
from repro.workloads.sensor import (
    KEY_SENSOR_AVG,
    KEY_SENSOR_RAW,
    SENSOR_EBPF,
    sensor_program,
)
from repro.workloads.coap_handler import COAP_HANDLER_EBPF, coap_handler_program

__all__ = [
    "COAP_HANDLER_EBPF",
    "FLETCHER32_EBPF",
    "FLETCHER32_INPUT",
    "KEY_SENSOR_AVG",
    "KEY_SENSOR_RAW",
    "SENSOR_EBPF",
    "THREAD_COUNTER_EBPF",
    "THREAD_START_KEY",
    "coap_handler_program",
    "fletcher32_program",
    "fletcher32_reference",
    "run_fletcher32",
    "sensor_program",
    "thread_counter_program",
]
