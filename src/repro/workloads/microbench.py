"""Per-instruction microbenchmarks (paper Fig 8).

For each instruction kind plotted in Fig 8 we generate a pair of programs:
a *measurement* program whose loop body contains ``unroll`` copies of the
target instruction, and a *baseline* with an empty body.  The marginal cost
of one instruction is ``(T_meas - T_base) / (iterations * unroll)`` — the
standard unrolled-loop methodology, executed for real on the instrumented
interpreter so dispatch overhead and loop bookkeeping are measured, not
assumed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vm.program import Program
from repro.vm.asm import assemble

#: The twelve instructions of Fig 8, in the paper's plotting order.
FIG8_INSTRUCTIONS = (
    ("alu_neg", "ALU negate", "neg r3"),
    ("alu_add", "ALU Add", "add r3, r4"),
    ("alu_add_imm", "ALU Add imm", "add r3, 1"),
    ("alu_mul_imm", "ALU multiply imm", "mul r3, 3"),
    ("alu_rsh_imm", "ALU right shift imm", "rsh r3, 1"),
    ("alu_div_imm", "ALU divide imm", "div r3, 3"),
    ("mem_ldxdw", "MEM load double", "ldxdw r3, [r10+8]"),
    ("mem_stdw_imm", "MEM store double imm", "stdw [r10+8], 42"),
    ("mem_stxdw", "MEM store double", "stxdw [r10+8], r3"),
    ("branch_ja", "Branch always", "ja +0"),
    ("branch_jeq_jump", "Branch equal (jump)", "jeq r5, 0, +0"),
    ("branch_jeq_cont", "Branch equal (continue)", "jeq r5, 1, +0"),
)


@dataclass(frozen=True)
class MicrobenchPair:
    """Measurement and baseline programs for one instruction."""

    key: str
    label: str
    measured: Program
    baseline: Program
    iterations: int
    unroll: int

    @property
    def per_iteration_extra(self) -> int:
        """Target instructions executed per loop iteration."""
        return self.unroll


def _loop_program(body: str, iterations: int, name: str) -> Program:
    source = f"""
    mov r3, 7
    mov r4, 5
    mov r5, 0
    mov r6, {iterations}
loop:
{body}
    sub r6, 1
    jne r6, 0, loop
    mov r0, r3
    exit
"""
    return assemble(source, name=name)


def build_pair(key: str, iterations: int = 64, unroll: int = 16) -> MicrobenchPair:
    """Build the measurement/baseline pair for one Fig 8 instruction."""
    for candidate_key, label, snippet in FIG8_INSTRUCTIONS:
        if candidate_key == key:
            body = "\n".join(f"    {snippet}" for _ in range(unroll))
            return MicrobenchPair(
                key=key,
                label=label,
                measured=_loop_program(body, iterations, f"ubench-{key}"),
                baseline=_loop_program("", iterations, "ubench-baseline"),
                iterations=iterations,
                unroll=unroll,
            )
    raise KeyError(f"unknown microbench instruction {key!r}")


def all_pairs(iterations: int = 64, unroll: int = 16) -> list[MicrobenchPair]:
    """All twelve Fig 8 pairs, in plotting order."""
    return [
        build_pair(key, iterations, unroll)
        for key, _label, _snippet in FIG8_INSTRUCTIONS
    ]
