"""§8.3, container 2: the CoAP response formatter.

Triggered by a CoAP GET, it fetches tenant A's stored sensor average,
renders it as decimal text and builds the response PDU — a faithful
translation of the paper's ``counter_fetch_gcoap.c`` snippet::

    int coap_resp(bpf_coap_ctx_t *gcoap) {
        uint32_t value;
        bpf_fetch_tenant(KEY, &value);
        char stringified[20];
        size_t str_len = bpf_fmt_u32_dec(stringified, value);
        bpf_gcoap_resp_init(gcoap, COAP_CODE_CONTENT);
        bpf_coap_add_format(gcoap, 0);
        ssize_t pdu_len = bpf_coap_opt_finish(gcoap, COAP_OPT_FINISH_PAYLOAD);
        uint8_t *payload = bpf_coap_get_pdu(gcoap);
        bpf_memcpy(payload, stringified, str_len);
        return pdu_len + str_len;
    }

It is "a representative example for business logic on the device": mostly
system calls, a little in-VM processing (§10.2).
"""

from __future__ import annotations

from repro.vm.asm import assemble
from repro.vm.program import Program

COAP_HANDLER_EBPF = """
; coap_resp -- context: opaque bpf_coap_ctx_t handle in r1
    mov   r9, r1              ; save CoAP context handle
    mov   r1, 0x10            ; KEY_SENSOR_AVG (tenant store)
    mov   r2, r10
    add   r2, 0
    call  bpf_fetch_tenant
    ldxw  r6, [r10+0]         ; value to report
    mov   r1, r10
    add   r1, 8               ; char stringified[20] on the stack
    mov   r2, r6
    call  bpf_fmt_u32_dec
    mov   r8, r0              ; str_len
    mov   r1, r9
    mov   r2, 0x45            ; COAP_CODE_CONTENT (2.05)
    call  bpf_gcoap_resp_init
    mov   r1, r9
    mov   r2, 0               ; content-format: text/plain
    call  bpf_coap_add_format
    mov   r1, r9
    mov   r2, 1               ; COAP_OPT_FINISH_PAYLOAD
    call  bpf_coap_opt_finish
    mov   r7, r0              ; pdu_len (header + options)
    mov   r1, r9
    call  bpf_coap_get_pdu
    mov   r1, r0              ; payload pointer
    mov   r2, r10
    add   r2, 8
    mov   r3, r8
    call  bpf_memcpy
    mov   r0, r7
    add   r0, r8              ; return pdu_len + str_len
    exit
"""


def coap_handler_program() -> Program:
    """Assemble the CoAP response-formatter application."""
    return assemble(COAP_HANDLER_EBPF, name="coap-response-formatter")
