"""Femto-Containers reproduction (MIDDLEWARE 2022).

A pure-Python, simulation-grade reimplementation of the Femto-Containers
middleware: an eBPF/rBPF virtual machine with pre-flight verification and
runtime memory isolation, a hosting engine with event hooks and key-value
stores, a RIOT-like RTOS substrate, a CoAP/UDP network substrate, the SUIT
secure-update pipeline, and the baseline runtimes the paper benchmarks
against.  See ``DESIGN.md`` for the system inventory and experiment index.

Quickstart::

    from repro import HostingEngine, Kernel, assemble, FC_HOOK_TIMER

    kernel = Kernel()                      # an nRF52840-class device
    engine = HostingEngine(kernel)         # the Femto-Container middleware
    program = assemble("mov r0, 42\\nexit")
    container = engine.load(program)
    engine.attach(container, FC_HOOK_TIMER)
    run = engine.execute(container)
    assert run.value == 42
"""

from repro.core import (
    ContainerContract,
    ContainerRun,
    FC_HOOK_COAP,
    FC_HOOK_SCHED,
    FC_HOOK_SENSOR_READ,
    FC_HOOK_TIMER,
    FemtoContainer,
    Hook,
    HookMode,
    HookPolicy,
    HostingEngine,
    KeyValueStore,
    Tenant,
)
from repro.rtos import Board, Kernel, all_boards, esp32_wroom32, gd32vf103, nrf52840
from repro.vm import (
    CertFCInterpreter,
    Instruction,
    Interpreter,
    Program,
    ProgramBuilder,
    VMFault,
    assemble,
    compile_program,
    disassemble,
    verify,
)

__version__ = "1.0.0"

__all__ = [
    "Board",
    "CertFCInterpreter",
    "ContainerContract",
    "ContainerRun",
    "FC_HOOK_COAP",
    "FC_HOOK_SCHED",
    "FC_HOOK_SENSOR_READ",
    "FC_HOOK_TIMER",
    "FemtoContainer",
    "Hook",
    "HookMode",
    "HookPolicy",
    "HostingEngine",
    "Instruction",
    "Interpreter",
    "KeyValueStore",
    "Kernel",
    "Program",
    "ProgramBuilder",
    "Tenant",
    "VMFault",
    "all_boards",
    "assemble",
    "compile_program",
    "disassemble",
    "esp32_wroom32",
    "gd32vf103",
    "nrf52840",
    "verify",
]
