"""Baseline ultra-lightweight virtualization runtimes (paper §6)."""

from repro.runtimes.base import RuntimeMetrics, VirtualizationCandidate
from repro.runtimes.profiles import (
    MICROPYTHON_PROFILE,
    NativeCandidate,
    RIOTJS_PROFILE,
    RbpfCandidate,
    ScriptCandidate,
    ScriptProfile,
    WASM3_PROFILE,
    WasmCandidate,
    WasmProfile,
    all_candidates,
    host_os_ram_bytes,
    host_os_rom_bytes,
)

__all__ = [
    "MICROPYTHON_PROFILE",
    "NativeCandidate",
    "RIOTJS_PROFILE",
    "RbpfCandidate",
    "RuntimeMetrics",
    "ScriptCandidate",
    "ScriptProfile",
    "VirtualizationCandidate",
    "WASM3_PROFILE",
    "WasmCandidate",
    "WasmProfile",
    "all_candidates",
    "host_os_ram_bytes",
    "host_os_rom_bytes",
]
