"""Baseline ultra-lightweight virtualization runtimes (paper §6).

Beyond the §6 comparison models, :mod:`repro.runtimes.base` defines the
:class:`ContainerRuntime` registry through which the hosting engine and
the deploy plane dispatch runtime-tagged images (rBPF, mini-Wasm,
script) onto one plan/OTA/publish stack.
"""

from repro.runtimes.base import (
    RUNTIME_RBPF,
    RUNTIME_SCRIPT,
    RUNTIME_WASM,
    ContainerRuntime,
    RuntimeMetrics,
    UnknownRuntimeError,
    VirtualizationCandidate,
    container_runtime,
    register_runtime,
    runtime_names,
)
from repro.runtimes.profiles import (
    MICROPYTHON_PROFILE,
    NativeCandidate,
    RIOTJS_PROFILE,
    RbpfCandidate,
    ScriptCandidate,
    ScriptProfile,
    WASM3_PROFILE,
    WasmCandidate,
    WasmProfile,
    all_candidates,
    host_os_ram_bytes,
    host_os_rom_bytes,
)

__all__ = [
    "ContainerRuntime",
    "MICROPYTHON_PROFILE",
    "NativeCandidate",
    "RIOTJS_PROFILE",
    "RUNTIME_RBPF",
    "RUNTIME_SCRIPT",
    "RUNTIME_WASM",
    "RbpfCandidate",
    "RuntimeMetrics",
    "ScriptCandidate",
    "ScriptProfile",
    "UnknownRuntimeError",
    "VirtualizationCandidate",
    "WASM3_PROFILE",
    "WasmCandidate",
    "WasmProfile",
    "all_candidates",
    "container_runtime",
    "host_os_ram_bytes",
    "host_os_rom_bytes",
    "register_runtime",
    "runtime_names",
]
