"""The §6 virtualization candidates and their cost/footprint profiles.

Each candidate executes the *same* fletcher32 workload on its own engine
(mini-wasm stack VM, script tree-walker, eBPF interpreter, native model)
and reports the Table 1/2 metrics.  ROM footprints of the third-party C
interpreters are documented profile constants (they cannot be derived from
Python — see DESIGN.md §4); RAM and run/startup times are computed from
the executed workload through per-class cycle models calibrated on the
paper's Cortex-M4 measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

from repro.rtos.board import Board
from repro.rtos.firmware import os_modules
from repro.runtimes.base import RuntimeMetrics
from repro.runtimes.script.interp import Interpreter as ScriptInterpreter
from repro.runtimes.script.lexer import tokenize
from repro.runtimes.sources import (
    SCRIPT_FLETCHER32_JS,
    SCRIPT_FLETCHER32_PY,
    WASM_FLETCHER32,
)
from repro.runtimes.wasm.asm import assemble as wasm_assemble
from repro.runtimes.wasm.interpreter import WasmInstance
from repro.vm.interpreter import RbpfInterpreter
from repro.workloads.fletcher32 import (
    FLETCHER32_INPUT,
    fletcher32_program,
    fletcher32_reference,
    make_context,
    native_instruction_estimate,
    prepare_vm,
)

#: rBPF runtime flash (engine + loader), from Fig 2's 8 % of 57 kB.
RBPF_RUNTIME_ROM = 4_560
#: WASM3 flash footprint (Table 1).
WASM3_ROM = 65_536
#: MicroPython flash footprint (Table 1).
MICROPYTHON_ROM = 103_424
#: RIOTjs flash footprint (Table 1).
RIOTJS_ROM = 123_904

#: Native Thumb-2 code for fletcher32: ~37 16-bit instructions (Table 2).
NATIVE_CODE_SIZE = 74


def host_os_rom_bytes() -> int:
    """The IoT-ready RIOT image without any VM (Table 1 last row)."""
    return sum(module.flash_bytes for module in os_modules())


def host_os_ram_bytes() -> int:
    from repro.rtos.firmware import HOST_OS_RAM

    return HOST_OS_RAM


# -- Native ------------------------------------------------------------------


class NativeCandidate:
    """Table 2's "Native C" row: the un-virtualized reference."""

    name = "Native C"

    def fletcher32_metrics(self, board: Board) -> RuntimeMetrics:
        result = fletcher32_reference(FLETCHER32_INPUT)
        cycles = board.native_cycles(native_instruction_estimate())
        return RuntimeMetrics(
            name=self.name,
            rom_bytes=0,
            ram_bytes=0,
            code_size=NATIVE_CODE_SIZE,
            cold_start_us=0.0,
            run_us=board.us(cycles),
            result=result,
        )


# -- rBPF ----------------------------------------------------------------------


class RbpfCandidate:
    """The eBPF/rBPF runtime (what Femto-Containers builds on)."""

    name = "rBPF"

    def fletcher32_metrics(self, board: Board) -> RuntimeMetrics:
        program = fletcher32_program()
        vm = RbpfInterpreter(program)
        prepare_vm(vm)
        execution = vm.run(context=make_context())
        cycles = board.vm_execution_cycles(execution.stats, "rbpf")
        return RuntimeMetrics(
            name=self.name,
            rom_bytes=RBPF_RUNTIME_ROM,
            ram_bytes=vm.ram_bytes,
            code_size=program.code_size,
            cold_start_us=board.us(board.vm_setup_cycles),
            run_us=board.us(cycles),
            result=execution.value,
        )


# -- WASM3-class --------------------------------------------------------------------


@dataclass(frozen=True)
class WasmProfile:
    """Cycle model of a WASM3-class transcoding interpreter."""

    op_cycles: Mapping[str, int]
    #: Startup: runtime/environment init plus per-byte transcoding.
    startup_base_cycles: int
    startup_cycles_per_byte: int


WASM3_PROFILE = WasmProfile(
    op_cycles=MappingProxyType({
        "alu": 13, "mul": 21, "div": 39, "mem": 32, "local": 11,
        "control": 19,
    }),
    startup_base_cycles=1_055_000,
    startup_cycles_per_byte=220,
)


class WasmCandidate:
    """Mini-WebAssembly runtime standing in for WASM3."""

    name = "WASM3"

    def __init__(self, profile: WasmProfile = WASM3_PROFILE):
        self.profile = profile

    def fletcher32_metrics(self, board: Board) -> RuntimeMetrics:
        module = wasm_assemble(WASM_FLETCHER32)
        instance = WasmInstance(module)
        instance.write_memory(0, FLETCHER32_INPUT)
        result = instance.run([len(FLETCHER32_INPUT)])
        run_cycles = sum(
            count * self.profile.op_cycles[cls]
            for cls, count in instance.stats.class_counts.items()
        )
        code_size = module.code_size
        startup = (
            self.profile.startup_base_cycles
            + self.profile.startup_cycles_per_byte * code_size
        )
        return RuntimeMetrics(
            name=self.name,
            rom_bytes=WASM3_ROM,
            ram_bytes=instance.ram_bytes,
            code_size=code_size,
            cold_start_us=board.us(startup),
            run_us=board.us(run_cycles),
            result=result,
        )


# -- script interpreters --------------------------------------------------------------


@dataclass(frozen=True)
class ScriptProfile:
    """Cost/footprint model of one script-interpreter runtime."""

    name: str
    rom_bytes: int
    state_ram_bytes: int
    heap_ram_bytes: int
    parse_base_cycles: int
    parse_cycles_per_token: int
    visit_cycles: Mapping[str, int]
    source: str

    @property
    def ram_bytes(self) -> int:
        return self.state_ram_bytes + self.heap_ram_bytes


MICROPYTHON_PROFILE = ScriptProfile(
    name="MicroPython",
    rom_bytes=MICROPYTHON_ROM,
    state_ram_bytes=2_200,
    heap_ram_bytes=6_196,          # configurable heap; Table 1 total 8.2 kB
    parse_base_cycles=1_337_000,   # interpreter + gc init, bytecode compile
    parse_cycles_per_token=350,
    visit_cycles=MappingProxyType({
        "literal": 102, "name": 138, "binop": 247, "assign": 218,
        "index": 378, "call": 1016, "control": 232,
    }),
    source=SCRIPT_FLETCHER32_PY,
)

RIOTJS_PROFILE = ScriptProfile(
    name="RIOTjs",
    rom_bytes=RIOTJS_ROM,
    state_ram_bytes=2_400,
    heap_ram_bytes=16_032,         # jerryscript-style heap; Table 1: 18 kB
    parse_base_cycles=296_000,     # lighter init than MicroPython
    parse_cycles_per_token=330,
    visit_cycles=MappingProxyType({
        "literal": 91, "name": 125, "binop": 222, "assign": 196,
        "index": 341, "call": 915, "control": 209,
    }),
    source=SCRIPT_FLETCHER32_JS,
)


class ScriptCandidate:
    """A tree-walking script runtime under a given profile."""

    def __init__(self, profile: ScriptProfile):
        self.profile = profile
        self.name = profile.name

    def fletcher32_metrics(self, board: Board) -> RuntimeMetrics:
        source = self.profile.source
        tokens = tokenize(source)
        interpreter = ScriptInterpreter.from_source(
            source, builtins={"input": FLETCHER32_INPUT, "len": len}
        )
        result = interpreter.run()
        run_cycles = sum(
            count * self.profile.visit_cycles[cls]
            for cls, count in interpreter.stats.class_counts.items()
        )
        startup = (
            self.profile.parse_base_cycles
            + self.profile.parse_cycles_per_token * len(tokens)
        )
        return RuntimeMetrics(
            name=self.name,
            rom_bytes=self.profile.rom_bytes,
            ram_bytes=self.profile.ram_bytes,
            code_size=len(source.encode()),
            cold_start_us=board.us(startup),
            run_us=board.us(run_cycles),
            result=int(result),  # type: ignore[arg-type]
        )


def all_candidates() -> list:
    """The §6 line-up, in the paper's Table 2 order."""
    return [
        NativeCandidate(),
        WasmCandidate(),
        RbpfCandidate(),
        ScriptCandidate(RIOTJS_PROFILE),
        ScriptCandidate(MICROPYTHON_PROFILE),
    ]
