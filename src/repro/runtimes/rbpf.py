"""The rBPF container runtime — the paper's native format.

This is the pre-registry hosting-engine attach/cost path moved behind the
:class:`~repro.runtimes.base.ContainerRuntime` protocol, verbatim: the
same verify charge before construction, the same JIT transpilation charge
after it, the same per-implementation cycle model from
:meth:`~repro.rtos.board.Board.vm_execution_cycles`.  The engine
differential suite pins modelled cycles for pure-rBPF workloads
bit-identical to the seed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.runtimes.base import RUNTIME_RBPF
from repro.runtimes.profiles import RBPF_RUNTIME_ROM
from repro.vm.imagecache import IMAGE_CACHE
from repro.vm.jit import CompiledProgram
from repro.vm.program import Program

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.container import FemtoContainer
    from repro.core.engine import HostingEngine
    from repro.core.policy import GrantedPolicy
    from repro.rtos.board import Board
    from repro.vm.helpers import HelperRegistry
    from repro.vm.interpreter import ExecutionStats, VMConfig
    from repro.vm.memory import AccessList
    from repro.vm.verifier import VerifierConfig


class RbpfContainerRuntime:
    """Deploys eBPF/rBPF images (every engine implementation)."""

    name = RUNTIME_RBPF
    rom_bytes = RBPF_RUNTIME_ROM

    def decode(self, payload: bytes, *, name: str = "app",
               rodata: bytes = b"", data: bytes = b"") -> Program:
        return Program.from_bytes(payload, name=name, rodata=rodata,
                                  data=data)

    def image_hash(self, text: bytes, rodata: bytes = b"",
                   data: bytes = b"") -> str:
        # Untagged on purpose: the historical content address of every
        # already-deployed rBPF image (cache keys, planner convergence).
        return Program.from_bytes(text, rodata=rodata, data=data).image_hash

    def attach(self, engine: "HostingEngine", container: "FemtoContainer",
               granted: "GrantedPolicy", vm_config: "VMConfig",
               access_list: "AccessList",
               verifier_config: "VerifierConfig") -> object:
        from repro.core.container import VM_CLASSES

        vm_class = VM_CLASSES[engine.implementation]
        engine.kernel.clock.charge(
            len(container.program.slots) * engine.board.verify_cycles_per_slot
        )
        if vm_class is CompiledProgram:
            # compile_program verifies internally, then transpiles.
            vm = CompiledProgram(
                container.program, helpers=engine.helpers,
                config=vm_config, access_list=access_list,
                verifier_config=verifier_config,
            )
            engine.kernel.clock.charge(
                vm.install_instruction_count
                * engine.board.jit_install_cycles_per_slot
            )
        else:
            IMAGE_CACHE.verify(container.program, verifier_config)
            vm = vm_class(
                container.program, helpers=engine.helpers,
                config=vm_config, access_list=access_list,
            )
        return vm

    def execution_cycles(self, board: "Board", stats: "ExecutionStats",
                         implementation: str,
                         helpers: "HelperRegistry | None" = None) -> int:
        return board.vm_execution_cycles(stats, implementation, helpers)
