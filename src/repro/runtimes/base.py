"""Common surface for the §6 virtualization candidates — and the
deployable :class:`ContainerRuntime` protocol built on top of them.

Each candidate (native, rBPF, WASM-class, MicroPython-class, RIOTjs-class)
loads the fletcher32 workload, runs it, and reports the five quantities the
paper compares: runtime ROM, runtime RAM, application code size, cold-start
time and run time (Tables 1 and 2).

The benchmark candidates answer "how does runtime X compare?"; the
:class:`ContainerRuntime` protocol answers "how does the hosting engine
*deploy* runtime X?".  A container runtime knows how to decode a payload
into an image, verify + instantiate it into a VM at attach time (charging
its calibrated startup cost to the virtual clock), and translate the
platform-independent execution counts of one run into modelled cycles.
The registry (:func:`container_runtime`) maps the ``runtime`` tag carried
by :class:`~repro.deploy.spec.ImageSpec` and SUIT manifests onto the
implementation, so the whole plan/OTA/publish stack moves rBPF, Wasm and
script containers through one code path.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol

from repro.rtos.board import Board

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.container import FemtoContainer
    from repro.core.engine import HostingEngine
    from repro.core.policy import GrantedPolicy
    from repro.vm.helpers import HelperRegistry
    from repro.vm.interpreter import ExecutionStats, VMConfig
    from repro.vm.memory import AccessList
    from repro.vm.verifier import VerifierConfig


@dataclass
class RuntimeMetrics:
    """One row of Tables 1/2 for one virtualization technique."""

    name: str
    rom_bytes: int
    ram_bytes: int
    code_size: int
    cold_start_us: float
    run_us: float
    result: int

    def slowdown_vs(self, native_run_us: float) -> float:
        """Execution-speed penalty vs native (the §6 '600x/77x/37x')."""
        if native_run_us <= 0:
            raise ValueError("native run time must be positive")
        return self.run_us / native_run_us


class VirtualizationCandidate(Protocol):
    """A runtime that can execute the fletcher32 benchmark."""

    name: str

    def fletcher32_metrics(self, board: Board) -> RuntimeMetrics:
        """Load + run fletcher32 over the canonical 360 B input."""
        ...


# -- deployable container runtimes --------------------------------------------

#: The canonical runtime tags.  ``rbpf`` is the default everywhere a tag
#: is absent — old specs, manifests and NVM records predate the tag and
#: were all rBPF by construction.
RUNTIME_RBPF = "rbpf"
RUNTIME_WASM = "wasm"
RUNTIME_SCRIPT = "script"
RUNTIME_DEFAULT = RUNTIME_RBPF


class ContainerRuntime(Protocol):
    """One deployable container format behind the hosting engine.

    Implementations exist for rBPF (:mod:`repro.runtimes.rbpf` — the
    paper's native format, kept bit-identical to the pre-registry
    engine), mini-Wasm (:mod:`repro.runtimes.wasm.container`) and the
    script interpreter (:mod:`repro.runtimes.script.container`).  Every
    layer above the engine — spec instantiation, SUIT activation, the
    planner's content addressing — dispatches through this protocol
    instead of assuming :class:`~repro.vm.program.Program`.
    """

    #: Registry tag (``"rbpf"``, ``"wasm"``, ``"script"``, ...).
    name: str
    #: Flash footprint of the runtime engine itself (Table 1).
    rom_bytes: int

    def decode(self, payload: bytes, *, name: str = "app",
               rodata: bytes = b"", data: bytes = b"") -> object:
        """Decode a SUIT payload into an image object.

        The image duck-types the ``Program`` surface the engine and
        planner touch: ``name``, ``runtime``, ``image_hash``,
        ``to_bytes()``, ``code_size``, ``image_size``, ``rodata``,
        ``data``.  Malformed payloads raise (pre-flight refusal).
        """
        ...

    def image_hash(self, text: bytes, rodata: bytes = b"",
                   data: bytes = b"") -> str:
        """Content hash of an encoded image under this runtime.

        Non-rBPF runtimes tag the hash (:func:`tagged_image_hash`), so
        the same bytes deployed under two runtimes are distinct images;
        rBPF keeps the historical untagged hash so existing content
        addressing (image cache, planner convergence) is unchanged.
        """
        ...

    def attach(self, engine: "HostingEngine", container: "FemtoContainer",
               granted: "GrantedPolicy", vm_config: "VMConfig",
               access_list: "AccessList",
               verifier_config: "VerifierConfig") -> object:
        """Verify the container's image and build its VM.

        Charges the runtime's modelled verify/startup cost to the
        engine's virtual clock and returns a VM exposing the engine's
        duck interface: ``run(context=..., context_perms=...)``,
        ``config``, ``access_list``, ``ram_bytes``.  Any exception is a
        pre-flight rejection (the engine wraps it in ``AttachError``).
        """
        ...

    def execution_cycles(self, board: Board, stats: "ExecutionStats",
                         implementation: str,
                         helpers: "HelperRegistry | None" = None) -> int:
        """Translate one run's platform-independent counts into cycles."""
        ...


def tagged_image_hash(runtime: str, text: bytes, rodata: bytes = b"",
                      data: bytes = b"") -> str:
    """Runtime-tagged content hash (same shape as ``Program.image_hash``).

    The tag is hashed in front of the sections, so identical bytes under
    two runtimes can never collide into one cache/planner identity.
    """
    digest = hashlib.sha256()
    digest.update(runtime.encode("ascii") + b"\x00")
    digest.update(text)
    digest.update(struct.pack("<II", len(rodata), len(data)))
    digest.update(rodata)
    digest.update(data)
    return digest.hexdigest()


#: Lazily imported built-in implementations (import cycles: the engine
#: imports this module, and the rBPF runtime imports engine-adjacent
#: modules, so construction must be deferred to first lookup).
_BUILTIN_RUNTIMES = {
    RUNTIME_RBPF: ("repro.runtimes.rbpf", "RbpfContainerRuntime"),
    RUNTIME_WASM: ("repro.runtimes.wasm.container", "WasmContainerRuntime"),
    RUNTIME_SCRIPT: ("repro.runtimes.script.container",
                     "ScriptContainerRuntime"),
}

_REGISTRY: dict[str, ContainerRuntime] = {}


def register_runtime(runtime: ContainerRuntime) -> ContainerRuntime:
    """Register (or override) a runtime under its ``name`` tag."""
    _REGISTRY[runtime.name] = runtime
    return runtime


def container_runtime(name: str) -> ContainerRuntime:
    """Resolve a runtime tag to its implementation (KeyError-safe)."""
    runtime = _REGISTRY.get(name)
    if runtime is not None:
        return runtime
    builtin = _BUILTIN_RUNTIMES.get(name)
    if builtin is None:
        raise UnknownRuntimeError(
            f"unknown container runtime {name!r}; "
            f"choose from {sorted(runtime_names())}"
        )
    module_name, class_name = builtin
    module = __import__(module_name, fromlist=[class_name])
    return register_runtime(getattr(module, class_name)())


def runtime_names() -> set[str]:
    """All resolvable runtime tags (built-in plus registered)."""
    return set(_BUILTIN_RUNTIMES) | set(_REGISTRY)


class UnknownRuntimeError(Exception):
    """The runtime tag does not resolve to a registered implementation."""
