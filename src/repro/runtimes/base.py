"""Common surface for the §6 virtualization candidates.

Each candidate (native, rBPF, WASM-class, MicroPython-class, RIOTjs-class)
loads the fletcher32 workload, runs it, and reports the five quantities the
paper compares: runtime ROM, runtime RAM, application code size, cold-start
time and run time (Tables 1 and 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.rtos.board import Board


@dataclass
class RuntimeMetrics:
    """One row of Tables 1/2 for one virtualization technique."""

    name: str
    rom_bytes: int
    ram_bytes: int
    code_size: int
    cold_start_us: float
    run_us: float
    result: int

    def slowdown_vs(self, native_run_us: float) -> float:
        """Execution-speed penalty vs native (the §6 '600x/77x/37x')."""
        if native_run_us <= 0:
            raise ValueError("native run time must be positive")
        return self.run_us / native_run_us


class VirtualizationCandidate(Protocol):
    """A runtime that can execute the fletcher32 benchmark."""

    name: str

    def fletcher32_metrics(self, board: Board) -> RuntimeMetrics:
        """Load + run fletcher32 over the canonical 360 B input."""
        ...
