"""Opcode set of the mini-WebAssembly VM (WASM3-class candidate).

A compact structured stack machine: 32-bit integers, one linear memory,
structured control flow (block/loop/end/br/br_if), locals and calls — the
subset the fletcher32 workload and the §6 comparison need.  Opcode numbers
follow the real WebAssembly encoding where the instruction exists there.
"""

from __future__ import annotations

# Control.
UNREACHABLE = 0x00
NOP = 0x01
BLOCK = 0x02
LOOP = 0x03
IF = 0x04
ELSE = 0x05
END = 0x0B
BR = 0x0C
BR_IF = 0x0D
RETURN = 0x0F
CALL = 0x10
DROP = 0x1A

# Variables.
LOCAL_GET = 0x20
LOCAL_SET = 0x21
LOCAL_TEE = 0x22

# Memory (i32, natural alignment; 16-bit offset immediate).
I32_LOAD = 0x28
I32_LOAD8_U = 0x2D
I32_LOAD16_U = 0x2F
I32_STORE = 0x36
I32_STORE8 = 0x3A
I32_STORE16 = 0x3B

# Constants.
I32_CONST = 0x41

# Comparison (result 0/1).
I32_EQZ = 0x45
I32_EQ = 0x46
I32_NE = 0x47
I32_LT_U = 0x49
I32_GT_U = 0x4B
I32_LE_U = 0x4D
I32_GE_U = 0x4F

# Arithmetic and bit ops.
I32_ADD = 0x6A
I32_SUB = 0x6B
I32_MUL = 0x6C
I32_DIV_U = 0x6E
I32_REM_U = 0x70
I32_AND = 0x71
I32_OR = 0x72
I32_XOR = 0x73
I32_SHL = 0x74
I32_SHR_U = 0x76

NAMES = {
    UNREACHABLE: "unreachable", NOP: "nop", BLOCK: "block", LOOP: "loop",
    IF: "if", ELSE: "else", END: "end", BR: "br", BR_IF: "br_if",
    RETURN: "return", CALL: "call", DROP: "drop",
    LOCAL_GET: "local.get", LOCAL_SET: "local.set", LOCAL_TEE: "local.tee",
    I32_LOAD: "i32.load", I32_LOAD8_U: "i32.load8_u",
    I32_LOAD16_U: "i32.load16_u", I32_STORE: "i32.store",
    I32_STORE8: "i32.store8", I32_STORE16: "i32.store16",
    I32_CONST: "i32.const",
    I32_EQZ: "i32.eqz", I32_EQ: "i32.eq", I32_NE: "i32.ne",
    I32_LT_U: "i32.lt_u", I32_GT_U: "i32.gt_u", I32_LE_U: "i32.le_u",
    I32_GE_U: "i32.ge_u",
    I32_ADD: "i32.add", I32_SUB: "i32.sub", I32_MUL: "i32.mul",
    I32_DIV_U: "i32.div_u", I32_REM_U: "i32.rem_u",
    I32_AND: "i32.and", I32_OR: "i32.or", I32_XOR: "i32.xor",
    I32_SHL: "i32.shl", I32_SHR_U: "i32.shr_u",
}

#: name -> opcode (assembler lookup).
OPCODES = {name: op for op, name in NAMES.items()}

#: Opcodes carrying a varint immediate.
WITH_IMMEDIATE = frozenset({
    I32_CONST, LOCAL_GET, LOCAL_SET, LOCAL_TEE, BR, BR_IF, CALL,
    I32_LOAD, I32_LOAD8_U, I32_LOAD16_U, I32_STORE, I32_STORE8, I32_STORE16,
})

#: Cost classes for the per-platform wasm cycle model.
COST_CLASS = {}
for _op in (I32_ADD, I32_SUB, I32_AND, I32_OR, I32_XOR, I32_SHL, I32_SHR_U,
            I32_EQZ, I32_EQ, I32_NE, I32_LT_U, I32_GT_U, I32_LE_U, I32_GE_U,
            DROP, NOP):
    COST_CLASS[_op] = "alu"
COST_CLASS[I32_MUL] = "mul"
COST_CLASS[I32_DIV_U] = "div"
COST_CLASS[I32_REM_U] = "div"
for _op in (I32_LOAD, I32_LOAD8_U, I32_LOAD16_U, I32_STORE, I32_STORE8,
            I32_STORE16):
    COST_CLASS[_op] = "mem"
for _op in (LOCAL_GET, LOCAL_SET, LOCAL_TEE, I32_CONST):
    COST_CLASS[_op] = "local"
for _op in (BLOCK, LOOP, IF, ELSE, END, BR, BR_IF, RETURN, CALL,
            UNREACHABLE):
    COST_CLASS[_op] = "control"
