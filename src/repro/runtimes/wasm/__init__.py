"""Mini-WebAssembly VM (the WASM3-class §6 candidate)."""

from repro.runtimes.wasm.asm import assemble
from repro.runtimes.wasm.interpreter import WasmInstance, WasmStats, WasmTrap
from repro.runtimes.wasm.module import Function, Module, PAGE_SIZE, WasmError
from repro.runtimes.wasm.validator import validate

__all__ = [
    "Function",
    "Module",
    "PAGE_SIZE",
    "WasmError",
    "WasmInstance",
    "WasmStats",
    "WasmTrap",
    "assemble",
    "validate",
]
