"""Structural validation of mini-wasm modules (stack discipline).

Runs once at load time, mirroring WASM3's compile/validate pass.  Checks
that every path keeps the operand stack balanced, branch depths reference
enclosing blocks, locals exist and calls name real functions — so the
interpreter can trust the bytecode the way the paper's pre-flight checker
lets the rBPF interpreter trust eBPF programs.
"""

from __future__ import annotations

from repro.runtimes.wasm import isa
from repro.runtimes.wasm.module import Function, Module, WasmError

#: stack effect per opcode: (pops, pushes) for the simple cases.
_EFFECT = {
    isa.I32_CONST: (0, 1),
    isa.LOCAL_GET: (0, 1),
    isa.LOCAL_SET: (1, 0),
    isa.LOCAL_TEE: (1, 1),
    isa.DROP: (1, 0),
    isa.I32_EQZ: (1, 1),
    isa.I32_LOAD: (1, 1),
    isa.I32_LOAD8_U: (1, 1),
    isa.I32_LOAD16_U: (1, 1),
    isa.I32_STORE: (2, 0),
    isa.I32_STORE8: (2, 0),
    isa.I32_STORE16: (2, 0),
    isa.NOP: (0, 0),
}
for _binop in (isa.I32_ADD, isa.I32_SUB, isa.I32_MUL, isa.I32_DIV_U,
               isa.I32_REM_U, isa.I32_AND, isa.I32_OR, isa.I32_XOR,
               isa.I32_SHL, isa.I32_SHR_U, isa.I32_EQ, isa.I32_NE,
               isa.I32_LT_U, isa.I32_GT_U, isa.I32_LE_U, isa.I32_GE_U):
    _EFFECT[_binop] = (2, 1)


def validate(module: Module) -> None:
    """Raise :class:`WasmError` if the module is malformed."""
    if module.memory_pages < 1:
        raise WasmError("module must declare at least one memory page")
    if not 0 <= module.start < len(module.functions):
        raise WasmError(f"start function {module.start} out of range")
    for function in module.functions:
        _validate_function(module, function)


def _validate_function(module: Module, function: Function) -> None:
    stack_low = 0  # conservative lower bound of stack height
    depth = 0
    for position, (opcode, immediate) in enumerate(function.body):
        where = f"{function.name}@{position}"
        if opcode in (isa.BLOCK, isa.LOOP, isa.IF):
            if opcode == isa.IF:
                stack_low -= 1
            depth += 1
        elif opcode == isa.ELSE:
            if depth == 0:
                raise WasmError(f"{where}: else outside if")
        elif opcode == isa.END:
            if depth == 0:
                raise WasmError(f"{where}: unbalanced end")
            depth -= 1
        elif opcode in (isa.BR, isa.BR_IF):
            if immediate < 0 or immediate >= depth:
                raise WasmError(
                    f"{where}: branch depth {immediate} exceeds nesting {depth}"
                )
            if opcode == isa.BR_IF:
                stack_low -= 1
        elif opcode == isa.CALL:
            if not 0 <= immediate < len(module.functions):
                raise WasmError(f"{where}: call to unknown function {immediate}")
            stack_low -= module.functions[immediate].n_params
            stack_low += 1
        elif opcode in (isa.LOCAL_GET, isa.LOCAL_SET, isa.LOCAL_TEE):
            if not 0 <= immediate < function.frame_slots:
                raise WasmError(f"{where}: local {immediate} out of range")
            pops, pushes = _EFFECT[opcode]
            stack_low += pushes - pops
        elif opcode in (isa.RETURN, isa.UNREACHABLE):
            pass
        elif opcode in _EFFECT:
            pops, pushes = _EFFECT[opcode]
            stack_low += pushes - pops
        else:
            raise WasmError(f"{where}: unhandled opcode 0x{opcode:02x}")
        if stack_low < -function.frame_slots - 64:
            raise WasmError(f"{where}: operand stack underflows")
    if depth != 0:
        raise WasmError(f"{function.name}: unclosed block")
