"""Mini-Wasm images as deployable Femto-Containers.

Adapts the WASM3-class stack VM (:mod:`repro.runtimes.wasm.interpreter`)
to the hosting engine's container interface: a :class:`WasmImage`
duck-types the ``Program`` surface the planner and SUIT worker touch, a
:class:`WasmContainerVM` exposes the ``run(context=..., ...)`` duck
interface and translates traps into the engine's contained
:class:`~repro.vm.errors.VMFault` hierarchy, and the runtime's cost model
comes from the §6 WASM3 profile: the calibrated per-cost-class cycle
table at run time, the base + per-byte transcoding cost at attach time.

Containment parity with rBPF: out-of-bounds linear-memory accesses trap
as :class:`~repro.vm.errors.MemoryFault`, division by zero as
:class:`~repro.vm.errors.DivisionFault`, and a per-run control-op budget
(the wasm analogue of the N_b taken-branch budget, wired from the granted
``branch_limit``) bounds runaway loops with
:class:`~repro.vm.errors.BranchLimitFault`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.runtimes.base import RUNTIME_WASM, tagged_image_hash
from repro.runtimes.profiles import WASM3_PROFILE, WASM3_ROM, WasmProfile
from repro.runtimes.wasm.interpreter import WasmInstance, WasmTrap
from repro.runtimes.wasm.module import Module, WasmError
from repro.vm.errors import (
    BranchLimitFault,
    DivisionFault,
    IllegalInstructionFault,
    MemoryFault,
    VerificationError,
)
from repro.vm.interpreter import ExecutionResult, ExecutionStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.container import FemtoContainer
    from repro.core.engine import HostingEngine
    from repro.core.policy import GrantedPolicy
    from repro.rtos.board import Board
    from repro.vm.helpers import HelperRegistry
    from repro.vm.interpreter import VMConfig
    from repro.vm.memory import AccessList
    from repro.vm.verifier import VerifierConfig

_M32 = (1 << 32) - 1


class WasmImage:
    """One decoded mini-wasm module, presenting the ``Program`` surface.

    Holds the encoded payload (what a SUIT manifest ships and what
    content addressing hashes) plus the decoded module.  Decoding
    validates the encoding; structural validation happens at attach
    (instantiation), mirroring rBPF's decode/verify split.
    """

    runtime = RUNTIME_WASM
    #: Wasm modules carry no separate data sections: constants live in
    #: the code, state in linear memory.
    rodata = b""
    data = b""

    def __init__(self, payload: bytes, name: str = "app"):
        self._payload = bytes(payload)
        self.module = Module.decode(self._payload)
        self.name = name
        self._hash: str | None = None

    def to_bytes(self) -> bytes:
        return self._payload

    @property
    def code_size(self) -> int:
        return len(self._payload)

    @property
    def image_size(self) -> int:
        return len(self._payload)

    @property
    def image_hash(self) -> str:
        if self._hash is None:
            self._hash = tagged_image_hash(self.runtime, self._payload)
        return self._hash


class _MeteredStats:
    """Per-run stats with a control-op fuel budget (the wasm N_b)."""

    __slots__ = ("executed", "class_counts", "branch_limit")

    def __init__(self, branch_limit: int):
        self.executed = 0
        self.class_counts: dict[str, int] = {}
        self.branch_limit = branch_limit

    def count(self, cost_class: str) -> None:
        self.executed += 1
        counts = self.class_counts
        counts[cost_class] = counts.get(cost_class, 0) + 1
        if cost_class == "control" and counts["control"] > self.branch_limit:
            raise WasmTrap("control-op budget exhausted")


def _fault_from_trap(trap: WasmTrap):
    message = str(trap)
    if "out of bounds" in message or "OOB" in message:
        return MemoryFault(message)
    if "divide by zero" in message or "remainder by zero" in message:
        return DivisionFault(message)
    if "budget exhausted" in message or "call stack exhausted" in message:
        return BranchLimitFault(message)
    return IllegalInstructionFault(message)


class WasmContainerVM:
    """Engine-facing VM wrapper around one :class:`WasmInstance`."""

    def __init__(self, image: WasmImage, config: "VMConfig",
                 access_list: "AccessList",
                 profile: WasmProfile = WASM3_PROFILE):
        self.image = image
        self.config = config
        self.access_list = access_list
        self.profile = profile
        # Instantiation validates the module (pre-flight refusal).
        self.instance = WasmInstance(image.module)

    @property
    def ram_bytes(self) -> int:
        return self.instance.ram_bytes

    def run(self, context: bytes | None = None,
            context_perms=None) -> ExecutionResult:
        """One contained execution: context at linear-memory offset 0,
        entry function called with the context length, i32 result."""
        instance = self.instance
        payload = bytes(context) if context else b""
        memory = instance.memory
        memory[:] = bytes(len(memory))
        stats = _MeteredStats(self.config.branch_limit)
        instance.stats = stats  # type: ignore[assignment]
        try:
            if len(payload) > len(memory):
                raise WasmTrap(
                    f"host write of {len(payload)} B at 0 OOB"
                )
            memory[: len(payload)] = payload
            value = instance.run([len(payload)])
        except WasmTrap as trap:
            raise _fault_from_trap(trap) from trap
        return ExecutionResult(
            value=value & _M32,
            stats=ExecutionStats(
                executed=stats.executed,
                branches_taken=stats.class_counts.get("control", 0),
                kind_counts=dict(stats.class_counts),
            ),
        )


class WasmContainerRuntime:
    """Deploys mini-wasm modules through the WASM3-class cost model."""

    name = RUNTIME_WASM
    rom_bytes = WASM3_ROM

    def __init__(self, profile: WasmProfile = WASM3_PROFILE):
        self.profile = profile

    def decode(self, payload: bytes, *, name: str = "app",
               rodata: bytes = b"", data: bytes = b"") -> WasmImage:
        if rodata or data:
            raise WasmError("wasm images carry no rodata/data sections")
        return WasmImage(payload, name=name)

    def image_hash(self, text: bytes, rodata: bytes = b"",
                   data: bytes = b"") -> str:
        return tagged_image_hash(self.name, text, rodata, data)

    def attach(self, engine: "HostingEngine", container: "FemtoContainer",
               granted: "GrantedPolicy", vm_config: "VMConfig",
               access_list: "AccessList",
               verifier_config: "VerifierConfig") -> WasmContainerVM:
        image = container.program
        instructions = sum(len(fn.body) for fn in image.module.functions)
        if instructions > verifier_config.max_instructions:
            raise VerificationError(
                f"module has {instructions} instructions, granted "
                f"limit is {verifier_config.max_instructions}"
            )
        # §6 WASM3 startup: runtime init plus per-byte transcoding —
        # charged at attach like rBPF's verify (and JIT install) costs.
        engine.kernel.clock.charge(
            self.profile.startup_base_cycles
            + self.profile.startup_cycles_per_byte * image.code_size
        )
        return WasmContainerVM(image, vm_config, access_list, self.profile)

    def execution_cycles(self, board: "Board", stats: "ExecutionStats",
                         implementation: str,
                         helpers: "HelperRegistry | None" = None) -> int:
        op_cycles = self.profile.op_cycles
        return sum(count * op_cycles[cost_class]
                   for cost_class, count in stats.kind_counts.items())
