"""Execution engine of the mini-wasm VM.

A classic structured-control stack machine: operand stack, locals frame,
label stack, one linear memory with bounds-checked accesses (out-of-bounds
traps, it never touches host state).  Like the eBPF interpreter, it counts
what it executes per cost class; the §6 comparison translates the counts
through a WASM3-like cycle model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtimes.wasm import isa
from repro.runtimes.wasm.module import Function, Module, PAGE_SIZE, WasmError
from repro.runtimes.wasm.validator import validate

_M32 = (1 << 32) - 1


class WasmTrap(Exception):
    """Runtime trap: the instance aborts, the host survives."""


@dataclass
class WasmStats:
    """Executed-instruction counts per cost class."""

    executed: int = 0
    class_counts: dict[str, int] = field(default_factory=dict)

    def count(self, cost_class: str) -> None:
        self.executed += 1
        self.class_counts[cost_class] = (
            self.class_counts.get(cost_class, 0) + 1
        )


@dataclass
class _Control:
    """Pre-resolved structure of one function's control flow."""

    end_of: dict[int, int]
    else_of: dict[int, int]


def _resolve_control(function: Function) -> _Control:
    end_of: dict[int, int] = {}
    else_of: dict[int, int] = {}
    stack: list[int] = []
    for position, (opcode, _imm) in enumerate(function.body):
        if opcode in (isa.BLOCK, isa.LOOP, isa.IF):
            stack.append(position)
        elif opcode == isa.ELSE:
            if not stack:
                raise WasmError(f"{function.name}: dangling else")
            else_of[stack[-1]] = position
        elif opcode == isa.END:
            if not stack:
                raise WasmError(f"{function.name}: dangling end")
            opener = stack.pop()
            end_of[opener] = position
    if stack:
        raise WasmError(f"{function.name}: unclosed control structure")
    return _Control(end_of=end_of, else_of=else_of)


class WasmInstance:
    """One instantiated module with its linear memory."""

    #: Interpreter state beyond linear memory (operand stack, frames,
    #: parsed-code image), modelled after WASM3's instance overhead.
    INTERPRETER_STATE_BYTES = 21_800

    def __init__(self, module: Module, max_call_depth: int = 64):
        validate(module)
        self.module = module
        self.memory = bytearray(module.memory_pages * PAGE_SIZE)
        self.max_call_depth = max_call_depth
        self._control = [_resolve_control(fn) for fn in module.functions]
        self.stats = WasmStats()

    # -- memory (bounds-checked) -------------------------------------------

    @property
    def ram_bytes(self) -> int:
        """RAM footprint: linear memory (>= one 64 KiB page) + state."""
        return len(self.memory) + self.INTERPRETER_STATE_BYTES

    def write_memory(self, addr: int, data: bytes) -> None:
        if addr < 0 or addr + len(data) > len(self.memory):
            raise WasmTrap(f"host write of {len(data)} B at {addr} OOB")
        self.memory[addr : addr + len(data)] = data

    def _load(self, addr: int, size: int) -> int:
        if addr < 0 or addr + size > len(self.memory):
            raise WasmTrap(f"load of {size} B at {addr} out of bounds")
        return int.from_bytes(self.memory[addr : addr + size], "little")

    def _store(self, addr: int, size: int, value: int) -> None:
        if addr < 0 or addr + size > len(self.memory):
            raise WasmTrap(f"store of {size} B at {addr} out of bounds")
        self.memory[addr : addr + size] = (value & ((1 << (8 * size)) - 1)) \
            .to_bytes(size, "little")

    # -- execution ---------------------------------------------------------------

    def run(self, args: list[int] | None = None,
            function: int | None = None) -> int:
        """Execute the start (or given) function; returns its i32 result."""
        index = self.module.start if function is None else function
        return self._call(index, [a & _M32 for a in (args or [])], depth=0)

    def _call(self, index: int, args: list[int], depth: int) -> int:
        if depth > self.max_call_depth:
            raise WasmTrap("call stack exhausted")
        function = self.module.functions[index]
        control = self._control[index]
        if len(args) != function.n_params:
            raise WasmTrap(
                f"{function.name} expects {function.n_params} args, "
                f"got {len(args)}"
            )
        locals_ = args + [0] * function.n_locals
        stack: list[int] = []
        labels: list[tuple[int, int]] = []  # (target_pc, label_stack_size)
        body = function.body
        count = self.stats.count
        pc = 0

        while pc < len(body):
            opcode, immediate = body[pc]
            count(isa.COST_CLASS[opcode])

            if opcode == isa.I32_CONST:
                stack.append(immediate & _M32)
            elif opcode == isa.LOCAL_GET:
                stack.append(locals_[immediate])
            elif opcode == isa.LOCAL_SET:
                locals_[immediate] = stack.pop()
            elif opcode == isa.LOCAL_TEE:
                locals_[immediate] = stack[-1]
            elif opcode in _BINOPS:
                rhs = stack.pop()
                lhs = stack.pop()
                stack.append(_BINOPS[opcode](lhs, rhs))
            elif opcode == isa.I32_EQZ:
                stack.append(1 if stack.pop() == 0 else 0)
            elif opcode in _LOADS:
                addr = stack.pop() + immediate
                stack.append(self._load(addr, _LOADS[opcode]))
            elif opcode in _STORES:
                value = stack.pop()
                addr = stack.pop() + immediate
                self._store(addr, _STORES[opcode], value)
            elif opcode == isa.BLOCK:
                labels.append((control.end_of[pc] + 1, len(stack)))
            elif opcode == isa.LOOP:
                labels.append((pc + 1, len(stack)))
            elif opcode == isa.IF:
                condition = stack.pop()
                labels.append((control.end_of[pc] + 1, len(stack)))
                if not condition:
                    else_pos = control.else_of.get(pc)
                    # Jump into the else branch, or to the END itself (which
                    # then pops the label) when there is no else.
                    pc = else_pos if else_pos is not None \
                        else control.end_of[pc] - 1
            elif opcode == isa.ELSE:
                # Reached from the then-branch: skip to the matching end.
                pc = _find_end_from_else(control, pc)
                labels.pop()
            elif opcode == isa.END:
                if labels:
                    labels.pop()
            elif opcode in (isa.BR, isa.BR_IF):
                take = True
                if opcode == isa.BR_IF:
                    take = bool(stack.pop())
                if take:
                    target, _height = labels[-(immediate + 1)]
                    del labels[len(labels) - immediate - 1 :]
                    pc = target - 1
                    # Branching back to a loop re-enters it: re-push its label.
                    if target > 0 and body[target - 1][0] == isa.LOOP:
                        labels.append((target, len(stack)))
            elif opcode == isa.RETURN:
                return stack.pop() if stack else 0
            elif opcode == isa.CALL:
                callee = self.module.functions[immediate]
                call_args = [stack.pop() for _ in range(callee.n_params)]
                call_args.reverse()
                stack.append(self._call(immediate, call_args, depth + 1))
            elif opcode == isa.DROP:
                stack.pop()
            elif opcode == isa.NOP:
                pass
            elif opcode == isa.UNREACHABLE:
                raise WasmTrap("unreachable executed")
            else:  # pragma: no cover - validator excludes
                raise WasmTrap(f"unhandled opcode 0x{opcode:02x}")
            pc += 1
        return stack.pop() if stack else 0


def _find_end_from_else(control: _Control, else_pc: int) -> int:
    for opener, else_pos in control.else_of.items():
        if else_pos == else_pc:
            return control.end_of[opener]
    raise WasmTrap("else without matching if")


def _div_u(lhs: int, rhs: int) -> int:
    if rhs == 0:
        raise WasmTrap("integer divide by zero")
    return lhs // rhs


def _rem_u(lhs: int, rhs: int) -> int:
    if rhs == 0:
        raise WasmTrap("integer remainder by zero")
    return lhs % rhs


_BINOPS = {
    isa.I32_ADD: lambda a, b: (a + b) & _M32,
    isa.I32_SUB: lambda a, b: (a - b) & _M32,
    isa.I32_MUL: lambda a, b: (a * b) & _M32,
    isa.I32_DIV_U: _div_u,
    isa.I32_REM_U: _rem_u,
    isa.I32_AND: lambda a, b: a & b,
    isa.I32_OR: lambda a, b: a | b,
    isa.I32_XOR: lambda a, b: a ^ b,
    isa.I32_SHL: lambda a, b: (a << (b & 31)) & _M32,
    isa.I32_SHR_U: lambda a, b: a >> (b & 31),
    isa.I32_EQ: lambda a, b: 1 if a == b else 0,
    isa.I32_NE: lambda a, b: 1 if a != b else 0,
    isa.I32_LT_U: lambda a, b: 1 if a < b else 0,
    isa.I32_GT_U: lambda a, b: 1 if a > b else 0,
    isa.I32_LE_U: lambda a, b: 1 if a <= b else 0,
    isa.I32_GE_U: lambda a, b: 1 if a >= b else 0,
}

_LOADS = {isa.I32_LOAD: 4, isa.I32_LOAD8_U: 1, isa.I32_LOAD16_U: 2}
_STORES = {isa.I32_STORE: 4, isa.I32_STORE8: 1, isa.I32_STORE16: 2}
