"""Line-based text assembler for the mini-wasm VM ("wat-lite").

Syntax::

    module pages=1
    func main params=1 locals=6
        local.get 0
        i32.const 1
        i32.add
        return
    end

Branch immediates are structural depths, as in real WebAssembly:
``br 0`` targets the innermost block/loop.
"""

from __future__ import annotations

from repro.runtimes.wasm import isa
from repro.runtimes.wasm.module import Function, Module, WasmError


def assemble(source: str) -> Module:
    module = Module()
    current: Function | None = None
    depth = 0
    for line_no, raw_line in enumerate(source.splitlines(), start=1):
        line = raw_line.split(";")[0].strip()
        if not line:
            continue
        parts = line.split()
        head = parts[0]

        if head == "module":
            for option in parts[1:]:
                key, _, value = option.partition("=")
                if key == "pages":
                    module.memory_pages = int(value)
                else:
                    raise WasmError(f"line {line_no}: unknown option {key!r}")
            continue
        if head == "func":
            if current is not None:
                raise WasmError(f"line {line_no}: nested func")
            name = parts[1]
            n_params = n_locals = 0
            for option in parts[2:]:
                key, _, value = option.partition("=")
                if key == "params":
                    n_params = int(value)
                elif key == "locals":
                    n_locals = int(value)
                else:
                    raise WasmError(f"line {line_no}: unknown option {key!r}")
            current = Function(name=name, n_params=n_params, n_locals=n_locals)
            depth = 0
            continue
        if head == "end" and current is not None and depth == 0 and len(parts) == 1:
            module.functions.append(current)
            current = None
            continue
        if current is None:
            raise WasmError(f"line {line_no}: instruction outside func")

        opcode = isa.OPCODES.get(head)
        if opcode is None:
            raise WasmError(f"line {line_no}: unknown instruction {head!r}")
        if opcode in (isa.BLOCK, isa.LOOP, isa.IF):
            depth += 1
        elif opcode == isa.END:
            if depth == 0:
                raise WasmError(f"line {line_no}: unbalanced end")
            depth -= 1
        immediate = 0
        if opcode in isa.WITH_IMMEDIATE:
            if len(parts) != 2:
                raise WasmError(f"line {line_no}: {head} needs an immediate")
            immediate = int(parts[1], 0)
        elif len(parts) != 1:
            raise WasmError(f"line {line_no}: {head} takes no operand")
        current.body.append((opcode, immediate))
    if current is not None:
        raise WasmError("unterminated func")
    if not module.functions:
        raise WasmError("module has no functions")
    try:
        module.start = module.function_index("main")
    except WasmError:
        module.start = 0
    return module
