"""Module representation and binary encoding for the mini-wasm VM.

The binary format mirrors real WebAssembly's shape (magic, sections, LEB128
immediates) so that measured code sizes are representative; it is not
byte-compatible with the official spec (we only encode what the VM
implements).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtimes.wasm import isa

MAGIC = b"\x00mwa"
VERSION = 1

#: WebAssembly's fixed page size; the spec floor the paper blames for
#: WASM3's RAM footprint ("the minimum required page size of 64 KiB").
PAGE_SIZE = 65536


class WasmError(Exception):
    """Malformed module or text."""


def encode_varint(value: int) -> bytes:
    """Signed LEB128."""
    out = bytearray()
    more = True
    while more:
        byte = value & 0x7F
        value >>= 7
        if (value == 0 and not byte & 0x40) or (value == -1 and byte & 0x40):
            more = False
        else:
            byte |= 0x80
        out.append(byte)
    return bytes(out)


def decode_varint(raw: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(raw):
            raise WasmError("truncated varint")
        byte = raw[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        shift += 7
        if not byte & 0x80:
            if byte & 0x40:
                result -= 1 << shift
            return result, pos


@dataclass
class Function:
    """One function: parameter/local counts and a flat instruction list."""

    name: str
    n_params: int
    n_locals: int
    #: list of (opcode, immediate) — immediate is 0 for no-immediate ops.
    body: list[tuple[int, int]] = field(default_factory=list)

    @property
    def frame_slots(self) -> int:
        return self.n_params + self.n_locals


@dataclass
class Module:
    """A loadable mini-wasm module."""

    functions: list[Function] = field(default_factory=list)
    memory_pages: int = 1
    start: int = 0  # index of the entry function

    def function_index(self, name: str) -> int:
        for index, function in enumerate(self.functions):
            if function.name == name:
                return index
        raise WasmError(f"no function named {name!r}")

    # -- binary codec ------------------------------------------------------

    def encode(self) -> bytes:
        out = bytearray(MAGIC)
        out += encode_varint(VERSION)
        out += encode_varint(self.memory_pages)
        out += encode_varint(self.start)
        out += encode_varint(len(self.functions))
        for function in self.functions:
            out += encode_varint(function.n_params)
            out += encode_varint(function.n_locals)
            body = bytearray()
            for opcode, immediate in function.body:
                body.append(opcode)
                if opcode in isa.WITH_IMMEDIATE:
                    body += encode_varint(immediate)
            out += encode_varint(len(body))
            out += body
        return bytes(out)

    @classmethod
    def decode(cls, raw: bytes) -> "Module":
        if raw[: len(MAGIC)] != MAGIC:
            raise WasmError("bad module magic")
        pos = len(MAGIC)
        version, pos = decode_varint(raw, pos)
        if version != VERSION:
            raise WasmError(f"unsupported module version {version}")
        pages, pos = decode_varint(raw, pos)
        start, pos = decode_varint(raw, pos)
        count, pos = decode_varint(raw, pos)
        functions: list[Function] = []
        for index in range(count):
            n_params, pos = decode_varint(raw, pos)
            n_locals, pos = decode_varint(raw, pos)
            body_len, pos = decode_varint(raw, pos)
            end = pos + body_len
            if end > len(raw):
                raise WasmError("truncated function body")
            body: list[tuple[int, int]] = []
            while pos < end:
                opcode = raw[pos]
                pos += 1
                if opcode not in isa.NAMES:
                    raise WasmError(f"unknown opcode 0x{opcode:02x}")
                immediate = 0
                if opcode in isa.WITH_IMMEDIATE:
                    immediate, pos = decode_varint(raw, pos)
                body.append((opcode, immediate))
            functions.append(
                Function(name=f"f{index}", n_params=n_params,
                         n_locals=n_locals, body=body)
            )
        return cls(functions=functions, memory_pages=pages, start=start)

    @property
    def code_size(self) -> int:
        """Encoded module size — the Table 2 'code size' metric."""
        return len(self.encode())
