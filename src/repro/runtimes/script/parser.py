"""Recursive-descent / Pratt parser for the mini scripting language."""

from __future__ import annotations

from repro.runtimes.script import nodes
from repro.runtimes.script.lexer import ScriptSyntaxError, Token, tokenize

#: Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3, "!=": 3,
    "<": 4, ">": 4, "<=": 4, ">=": 4,
    "|": 5,
    "^": 6,
    "&": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0
        self.source_bytes = len(source.encode())

    # -- token plumbing ------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def check(self, kind: str, text: str | None = None) -> bool:
        token = self.current
        return token.kind == kind and (text is None or token.text == text)

    def match(self, kind: str, text: str | None = None) -> Token | None:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        token = self.match(kind, text)
        if token is None:
            wanted = text or kind
            raise ScriptSyntaxError(
                f"expected {wanted!r}, found {self.current.text!r}",
                self.current.line,
            )
        return token

    # -- grammar ---------------------------------------------------------------

    def parse(self) -> nodes.Script:
        body: list[nodes.Node] = []
        while not self.check("eof"):
            body.append(self.statement())
        return nodes.Script(
            body=body,
            token_count=len(self.tokens),
            source_bytes=self.source_bytes,
        )

    def block(self) -> list[nodes.Node]:
        self.expect("op", "{")
        body: list[nodes.Node] = []
        while not self.check("op", "}"):
            if self.check("eof"):
                raise ScriptSyntaxError("unterminated block", self.current.line)
            body.append(self.statement())
        self.expect("op", "}")
        return body

    def statement(self) -> nodes.Node:
        token = self.current
        if token.kind == "keyword":
            if token.text == "var":
                return self.var_decl()
            if token.text == "func":
                return self.func_decl()
            if token.text == "if":
                return self.if_statement()
            if token.text == "while":
                return self.while_statement()
            if token.text == "return":
                self.advance()
                value = None
                if not self.check("op", ";"):
                    value = self.expression()
                self.expect("op", ";")
                return nodes.Return(value=value, line=token.line)
        if token.kind == "name" and self.tokens[self.pos + 1].text == "=":
            self.advance()
            self.advance()
            value = self.expression()
            self.expect("op", ";")
            return nodes.Assign(name=token.text, value=value, line=token.line)
        expression = self.expression()
        self.expect("op", ";")
        return nodes.ExprStatement(expression=expression, line=token.line)

    def var_decl(self) -> nodes.VarDecl:
        keyword = self.expect("keyword", "var")
        name = self.expect("name").text
        initializer = None
        if self.match("op", "="):
            initializer = self.expression()
        self.expect("op", ";")
        return nodes.VarDecl(name=name, initializer=initializer,
                             line=keyword.line)

    def func_decl(self) -> nodes.FuncDecl:
        keyword = self.expect("keyword", "func")
        name = self.expect("name").text
        self.expect("op", "(")
        parameters: list[str] = []
        while not self.check("op", ")"):
            parameters.append(self.expect("name").text)
            if not self.match("op", ","):
                break
        self.expect("op", ")")
        return nodes.FuncDecl(name=name, parameters=parameters,
                              body=self.block(), line=keyword.line)

    def if_statement(self) -> nodes.If:
        keyword = self.expect("keyword", "if")
        self.expect("op", "(")
        condition = self.expression()
        self.expect("op", ")")
        then_body = self.block()
        else_body: list[nodes.Node] = []
        if self.match("keyword", "else"):
            if self.check("keyword", "if"):
                else_body = [self.if_statement()]
            else:
                else_body = self.block()
        return nodes.If(condition=condition, then_body=then_body,
                        else_body=else_body, line=keyword.line)

    def while_statement(self) -> nodes.While:
        keyword = self.expect("keyword", "while")
        self.expect("op", "(")
        condition = self.expression()
        self.expect("op", ")")
        return nodes.While(condition=condition, body=self.block(),
                           line=keyword.line)

    # -- expressions (Pratt) --------------------------------------------------------

    def expression(self, min_precedence: int = 0) -> nodes.Node:
        left = self.unary()
        while True:
            token = self.current
            precedence = _PRECEDENCE.get(token.text, 0) \
                if token.kind == "op" else 0
            if precedence <= min_precedence:
                return left
            self.advance()
            right = self.expression(precedence)
            left = nodes.Binary(operator=token.text, left=left, right=right,
                                line=token.line)

    def unary(self) -> nodes.Node:
        token = self.current
        if token.kind == "op" and token.text in ("-", "!"):
            self.advance()
            return nodes.Unary(operator=token.text, operand=self.unary(),
                               line=token.line)
        return self.postfix()

    def postfix(self) -> nodes.Node:
        node = self.primary()
        while True:
            if self.check("op", "["):
                bracket = self.advance()
                index = self.expression()
                self.expect("op", "]")
                node = nodes.Index(subject=node, index=index,
                                   line=bracket.line)
            else:
                return node

    def primary(self) -> nodes.Node:
        token = self.advance()
        if token.kind == "int":
            return nodes.Literal(value=token.value, line=token.line)
        if token.kind == "string":
            return nodes.Literal(value=token.text, line=token.line)
        if token.kind == "keyword" and token.text in ("true", "false"):
            return nodes.Literal(value=token.text == "true", line=token.line)
        if token.kind == "op" and token.text == "(":
            inner = self.expression()
            self.expect("op", ")")
            return inner
        if token.kind == "name":
            if self.check("op", "("):
                self.advance()
                arguments: list[nodes.Node] = []
                while not self.check("op", ")"):
                    arguments.append(self.expression())
                    if not self.match("op", ","):
                        break
                self.expect("op", ")")
                return nodes.Call(callee=token.text, arguments=arguments,
                                  line=token.line)
            return nodes.Name(identifier=token.text, line=token.line)
        raise ScriptSyntaxError(
            f"unexpected token {token.text!r}", token.line
        )


def parse(source: str) -> nodes.Script:
    """Parse source into a :class:`~repro.runtimes.script.nodes.Script`."""
    return Parser(source).parse()
