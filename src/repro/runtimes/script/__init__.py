"""Mini scripting language (the MicroPython/RIOTjs-class §6 candidates)."""

from repro.runtimes.script.interp import (
    Interpreter,
    ScriptRuntimeError,
    ScriptStats,
    run_source,
)
from repro.runtimes.script.lexer import ScriptSyntaxError, Token, tokenize
from repro.runtimes.script.parser import parse

__all__ = [
    "Interpreter",
    "ScriptRuntimeError",
    "ScriptStats",
    "ScriptSyntaxError",
    "Token",
    "parse",
    "run_source",
    "tokenize",
]
