"""Script images as deployable Femto-Containers.

Adapts the tree-walking script interpreter
(:mod:`repro.runtimes.script.interp`) to the hosting engine's container
interface.  The payload *is* the source (the paper ships MicroPython /
RIOT.js programs to devices as text, which is why script code size is
source size in Table 2); decoding parses it — the script analogue of the
pre-flight verifier, so a syntactically broken payload is refused before
it can attach.  Cost comes from a §6 :class:`ScriptProfile`: real
tokenizer length times the per-token parse cost at attach, real node-visit
counts through the per-class visit table at run time.

Containment parity with rBPF: out-of-range indexing faults as
:class:`~repro.vm.errors.MemoryFault`, division by zero as
:class:`~repro.vm.errors.DivisionFault`, and the per-loop iteration
ceiling (wired from the granted ``branch_limit``) plus a recursion guard
bound runaway scripts with :class:`~repro.vm.errors.BranchLimitFault`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.runtimes.base import RUNTIME_SCRIPT, tagged_image_hash
from repro.runtimes.profiles import MICROPYTHON_PROFILE, ScriptProfile
from repro.runtimes.script.interp import Interpreter, ScriptRuntimeError
from repro.runtimes.script.lexer import tokenize
from repro.runtimes.script.parser import parse
from repro.vm.errors import (
    BranchLimitFault,
    DivisionFault,
    IllegalInstructionFault,
    MemoryFault,
)
from repro.vm.interpreter import ExecutionResult, ExecutionStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.container import FemtoContainer
    from repro.core.engine import HostingEngine
    from repro.core.policy import GrantedPolicy
    from repro.rtos.board import Board
    from repro.vm.helpers import HelperRegistry
    from repro.vm.interpreter import VMConfig
    from repro.vm.memory import AccessList
    from repro.vm.verifier import VerifierConfig

_M64 = (1 << 64) - 1


class ScriptImage:
    """One parsed script, presenting the ``Program`` surface."""

    runtime = RUNTIME_SCRIPT
    rodata = b""
    data = b""

    def __init__(self, payload: bytes, name: str = "app"):
        self._payload = bytes(payload)
        self.source = self._payload.decode("utf-8")
        # Parsing is the pre-flight check: a payload that does not parse
        # never reaches a hook.  The token count feeds the startup model.
        self.script = parse(self.source)
        self.tokens = len(tokenize(self.source))
        self.name = name
        self._hash: str | None = None

    def to_bytes(self) -> bytes:
        return self._payload

    @property
    def code_size(self) -> int:
        return len(self._payload)

    @property
    def image_size(self) -> int:
        return len(self._payload)

    @property
    def image_hash(self) -> str:
        if self._hash is None:
            self._hash = tagged_image_hash(self.runtime, self._payload)
        return self._hash


def _fault_from_error(error: ScriptRuntimeError):
    message = str(error)
    if "out of range" in message or "not indexable" in message:
        return MemoryFault(message)
    if "division by zero" in message:
        return DivisionFault(message)
    if "loop iteration limit exceeded" in message:
        return BranchLimitFault(message)
    return IllegalInstructionFault(message)


class ScriptContainerVM:
    """Engine-facing VM wrapper: one fresh interpreter per execution."""

    def __init__(self, image: ScriptImage, config: "VMConfig",
                 access_list: "AccessList",
                 profile: ScriptProfile = MICROPYTHON_PROFILE):
        self.image = image
        self.config = config
        self.access_list = access_list
        self.profile = profile

    @property
    def ram_bytes(self) -> int:
        """Interpreter state + heap, modelled after the profile's Table 1
        footprint (the real heap is host-side Python)."""
        return self.profile.ram_bytes

    def run(self, context: bytes | None = None,
            context_perms=None) -> ExecutionResult:
        payload = bytes(context) if context else b""
        interpreter = Interpreter(
            self.image.script,
            builtins={"input": payload, "context": payload, "len": len},
        )
        # Per-instance loop ceiling: the script analogue of the granted
        # N_b taken-branch budget.
        interpreter.MAX_LOOP_ITERATIONS = self.config.branch_limit  # type: ignore[misc]
        try:
            result = interpreter.run()
        except ScriptRuntimeError as error:
            raise _fault_from_error(error) from error
        except RecursionError as error:
            # Unbounded script recursion rides the host stack; contain it
            # exactly like an exhausted branch budget.
            raise BranchLimitFault("call stack exhausted") from error
        stats = interpreter.stats
        return ExecutionResult(
            value=(result & _M64 if isinstance(result, int) else 0),
            stats=ExecutionStats(
                executed=stats.visits,
                branches_taken=stats.class_counts.get("control", 0),
                kind_counts=dict(stats.class_counts),
            ),
        )


class ScriptContainerRuntime:
    """Deploys script sources through a §6 script-interpreter profile."""

    name = RUNTIME_SCRIPT

    def __init__(self, profile: ScriptProfile = MICROPYTHON_PROFILE):
        self.profile = profile
        self.rom_bytes = profile.rom_bytes

    def decode(self, payload: bytes, *, name: str = "app",
               rodata: bytes = b"", data: bytes = b"") -> ScriptImage:
        if rodata or data:
            raise ValueError("script images carry no rodata/data sections")
        return ScriptImage(payload, name=name)

    def image_hash(self, text: bytes, rodata: bytes = b"",
                   data: bytes = b"") -> str:
        return tagged_image_hash(self.name, text, rodata, data)

    def attach(self, engine: "HostingEngine", container: "FemtoContainer",
               granted: "GrantedPolicy", vm_config: "VMConfig",
               access_list: "AccessList",
               verifier_config: "VerifierConfig") -> ScriptContainerVM:
        image = container.program
        # §6 script startup: interpreter/GC init plus per-token parsing —
        # the attach-time cost a device pays to (re)load a script.
        engine.kernel.clock.charge(
            self.profile.parse_base_cycles
            + self.profile.parse_cycles_per_token * image.tokens
        )
        return ScriptContainerVM(image, vm_config, access_list, self.profile)

    def execution_cycles(self, board: "Board", stats: "ExecutionStats",
                         implementation: str,
                         helpers: "HelperRegistry | None" = None) -> int:
        visit_cycles = self.profile.visit_cycles
        return sum(count * visit_cycles[node_class]
                   for node_class, count in stats.kind_counts.items())
