"""Tree-walking evaluator for the mini scripting language.

Counts node visits per class and tracks a heap-allocation model, which the
§6 profiles translate into cycles and RAM — startup cost comes from the
real tokenizer/parser (per token), run cost from the real tree walk.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtimes.script import nodes
from repro.runtimes.script.parser import parse

_M64 = (1 << 64) - 1


class ScriptRuntimeError(Exception):
    """Raised for type errors, unknown names, division by zero..."""


class _ReturnSignal(Exception):
    def __init__(self, value: object):
        self.value = value


@dataclass
class ScriptStats:
    """Node-visit counts per class plus allocation accounting."""

    visits: int = 0
    class_counts: dict[str, int] = field(default_factory=dict)
    allocations: int = 0

    def count(self, node_class: str) -> None:
        self.visits += 1
        self.class_counts[node_class] = (
            self.class_counts.get(node_class, 0) + 1
        )


@dataclass
class _Function:
    declaration: nodes.FuncDecl


class Interpreter:
    """One script execution context with a global environment."""

    MAX_LOOP_ITERATIONS = 10_000_000

    def __init__(self, script: nodes.Script,
                 builtins: dict[str, object] | None = None):
        self.script = script
        self.globals: dict[str, object] = dict(builtins or {})
        self.stats = ScriptStats()

    @classmethod
    def from_source(cls, source: str,
                    builtins: dict[str, object] | None = None) -> "Interpreter":
        return cls(parse(source), builtins)

    # -- public -----------------------------------------------------------

    def run(self) -> object:
        """Execute the top-level statement list; `return` yields a value."""
        try:
            self._exec_block(self.script.body, self.globals)
        except _ReturnSignal as signal:
            return signal.value
        return None

    # -- statements -----------------------------------------------------------

    def _exec_block(self, body: list[nodes.Node],
                    env: dict[str, object]) -> None:
        for statement in body:
            self._exec(statement, env)

    def _exec(self, node: nodes.Node, env: dict[str, object]) -> None:
        if isinstance(node, nodes.VarDecl):
            self.stats.count("assign")
            self.stats.allocations += 1
            env[node.name] = (
                self._eval(node.initializer, env)
                if node.initializer is not None else None
            )
        elif isinstance(node, nodes.Assign):
            self.stats.count("assign")
            value = self._eval(node.value, env)
            scope = self._scope_of(node.name, env)
            scope[node.name] = value
        elif isinstance(node, nodes.If):
            self.stats.count("control")
            if self._truthy(self._eval(node.condition, env)):
                self._exec_block(node.then_body, env)
            else:
                self._exec_block(node.else_body, env)
        elif isinstance(node, nodes.While):
            iterations = 0
            while True:
                self.stats.count("control")
                if not self._truthy(self._eval(node.condition, env)):
                    break
                self._exec_block(node.body, env)
                iterations += 1
                if iterations > self.MAX_LOOP_ITERATIONS:
                    raise ScriptRuntimeError(
                        f"line {node.line}: loop iteration limit exceeded"
                    )
        elif isinstance(node, nodes.FuncDecl):
            self.stats.count("assign")
            self.stats.allocations += 1
            env[node.name] = _Function(node)
        elif isinstance(node, nodes.Return):
            self.stats.count("control")
            value = (
                self._eval(node.value, env) if node.value is not None else None
            )
            raise _ReturnSignal(value)
        elif isinstance(node, nodes.ExprStatement):
            self._eval(node.expression, env)
        else:
            raise ScriptRuntimeError(
                f"line {node.line}: cannot execute {type(node).__name__}"
            )

    def _scope_of(self, name: str, env: dict[str, object]) -> dict[str, object]:
        if name in env:
            return env
        if name in self.globals:
            return self.globals
        raise ScriptRuntimeError(f"assignment to undeclared name {name!r}")

    # -- expressions ------------------------------------------------------------

    def _eval(self, node: nodes.Node, env: dict[str, object]) -> object:
        if isinstance(node, nodes.Literal):
            self.stats.count("literal")
            return node.value
        if isinstance(node, nodes.Name):
            self.stats.count("name")
            if node.identifier in env:
                return env[node.identifier]
            if node.identifier in self.globals:
                return self.globals[node.identifier]
            raise ScriptRuntimeError(
                f"line {node.line}: unknown name {node.identifier!r}"
            )
        if isinstance(node, nodes.Unary):
            self.stats.count("binop")
            operand = self._eval(node.operand, env)
            if node.operator == "-":
                return -self._int(operand, node)
            return not self._truthy(operand)
        if isinstance(node, nodes.Binary):
            self.stats.count("binop")
            return self._binary(node, env)
        if isinstance(node, nodes.Index):
            self.stats.count("index")
            subject = self._eval(node.subject, env)
            index = self._int(self._eval(node.index, env), node)
            if isinstance(subject, (bytes, bytearray)):
                if not 0 <= index < len(subject):
                    raise ScriptRuntimeError(
                        f"line {node.line}: index {index} out of range"
                    )
                return subject[index]
            if isinstance(subject, str):
                return subject[index]
            raise ScriptRuntimeError(
                f"line {node.line}: {type(subject).__name__} not indexable"
            )
        if isinstance(node, nodes.Call):
            self.stats.count("call")
            return self._call(node, env)
        raise ScriptRuntimeError(
            f"line {node.line}: cannot evaluate {type(node).__name__}"
        )

    def _binary(self, node: nodes.Binary, env: dict[str, object]) -> object:
        operator = node.operator
        if operator == "&&":
            return (
                self._truthy(self._eval(node.left, env))
                and self._truthy(self._eval(node.right, env))
            )
        if operator == "||":
            return (
                self._truthy(self._eval(node.left, env))
                or self._truthy(self._eval(node.right, env))
            )
        left = self._eval(node.left, env)
        right = self._eval(node.right, env)
        if operator == "==":
            return left == right
        if operator == "!=":
            return left != right
        if operator == "+" and isinstance(left, str) and isinstance(right, str):
            self.stats.allocations += 1
            return left + right
        lhs, rhs = self._int(left, node), self._int(right, node)
        if operator == "+":
            return lhs + rhs
        if operator == "-":
            return lhs - rhs
        if operator == "*":
            return lhs * rhs
        if operator in ("/", "%"):
            if rhs == 0:
                raise ScriptRuntimeError(
                    f"line {node.line}: division by zero"
                )
            return lhs // rhs if operator == "/" else lhs % rhs
        if operator == "<<":
            return (lhs << (rhs & 63)) & _M64
        if operator == ">>":
            return lhs >> (rhs & 63)
        if operator == "&":
            return lhs & rhs
        if operator == "|":
            return lhs | rhs
        if operator == "^":
            return lhs ^ rhs
        if operator == "<":
            return lhs < rhs
        if operator == ">":
            return lhs > rhs
        if operator == "<=":
            return lhs <= rhs
        if operator == ">=":
            return lhs >= rhs
        raise ScriptRuntimeError(
            f"line {node.line}: unknown operator {operator!r}"
        )

    def _call(self, node: nodes.Call, env: dict[str, object]) -> object:
        arguments = [self._eval(arg, env) for arg in node.arguments]
        target = env.get(node.callee, self.globals.get(node.callee))
        if isinstance(target, _Function):
            declaration = target.declaration
            if len(arguments) != len(declaration.parameters):
                raise ScriptRuntimeError(
                    f"line {node.line}: {node.callee} expects "
                    f"{len(declaration.parameters)} args"
                )
            frame = dict(zip(declaration.parameters, arguments))
            self.stats.allocations += 1 + len(frame)
            try:
                self._exec_block(declaration.body, frame)
            except _ReturnSignal as signal:
                return signal.value
            return None
        if callable(target):
            return target(*arguments)
        if node.callee == "len":
            return len(arguments[0])  # type: ignore[arg-type]
        raise ScriptRuntimeError(
            f"line {node.line}: unknown function {node.callee!r}"
        )

    # -- helpers -------------------------------------------------------------------

    @staticmethod
    def _truthy(value: object) -> bool:
        return bool(value)

    def _int(self, value: object, node: nodes.Node) -> int:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        raise ScriptRuntimeError(
            f"line {node.line}: expected integer, got {type(value).__name__}"
        )


def run_source(source: str,
               builtins: dict[str, object] | None = None) -> tuple[object, ScriptStats]:
    """Parse and execute; returns (result, stats)."""
    interpreter = Interpreter.from_source(source, builtins)
    result = interpreter.run()
    return result, interpreter.stats
