"""AST node types for the mini scripting language."""

from __future__ import annotations

from dataclasses import dataclass, field


class Node:
    """Base class; every node knows its source line for error messages."""

    line: int = 0


@dataclass
class Literal(Node):
    value: object
    line: int = 0


@dataclass
class Name(Node):
    identifier: str
    line: int = 0


@dataclass
class Unary(Node):
    operator: str
    operand: Node
    line: int = 0


@dataclass
class Binary(Node):
    operator: str
    left: Node
    right: Node
    line: int = 0


@dataclass
class Index(Node):
    subject: Node
    index: Node
    line: int = 0


@dataclass
class Call(Node):
    callee: str
    arguments: list[Node] = field(default_factory=list)
    line: int = 0


@dataclass
class VarDecl(Node):
    name: str
    initializer: Node | None = None
    line: int = 0


@dataclass
class Assign(Node):
    name: str
    value: Node
    line: int = 0


@dataclass
class If(Node):
    condition: Node
    then_body: list[Node] = field(default_factory=list)
    else_body: list[Node] = field(default_factory=list)
    line: int = 0


@dataclass
class While(Node):
    condition: Node
    body: list[Node] = field(default_factory=list)
    line: int = 0


@dataclass
class FuncDecl(Node):
    name: str
    parameters: list[str] = field(default_factory=list)
    body: list[Node] = field(default_factory=list)
    line: int = 0


@dataclass
class Return(Node):
    value: Node | None = None
    line: int = 0


@dataclass
class ExprStatement(Node):
    expression: Node = None  # type: ignore[assignment]
    line: int = 0


@dataclass
class Script(Node):
    """A whole program: a statement list."""

    body: list[Node] = field(default_factory=list)
    #: Token count, kept for the startup (parse) cost model.
    token_count: int = 0
    source_bytes: int = 0
