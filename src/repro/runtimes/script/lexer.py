"""Tokenizer for the mini scripting language ("mscript").

One small imperative language serves as the stand-in for both script-
interpreter candidates of §6 (MicroPython-class and RIOTjs-class); the two
differ in their runtime cost profiles, not in language machinery — which
matches the paper's observation that both are tree-walking interpreters
with similar run-time behaviour and differing startup/footprint.
"""

from __future__ import annotations

from dataclasses import dataclass

KEYWORDS = frozenset(
    {"var", "func", "if", "else", "while", "return", "true", "false"}
)

#: Multi-character operators, longest first.
_OPERATORS = (
    "<<", ">>", "==", "!=", "<=", ">=", "&&", "||",
    "+", "-", "*", "/", "%", "&", "|", "^", "!", "<", ">", "=",
    "(", ")", "{", "}", "[", "]", ",", ";",
)


class ScriptSyntaxError(Exception):
    """Lexical or syntactic error, with a line number."""

    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


@dataclass(frozen=True)
class Token:
    kind: str  # "int" | "string" | "name" | "keyword" | "op" | "eof"
    text: str
    line: int
    value: int = 0


def tokenize(source: str) -> list[Token]:
    """Turn source text into a token list ending with an EOF token."""
    tokens: list[Token] = []
    line = 1
    pos = 0
    length = len(source)
    while pos < length:
        ch = source[pos]
        if ch == "\n":
            line += 1
            pos += 1
            continue
        if ch in " \t\r":
            pos += 1
            continue
        if ch == "#":
            while pos < length and source[pos] != "\n":
                pos += 1
            continue
        if ch.isdigit():
            start = pos
            if source.startswith("0x", pos) or source.startswith("0X", pos):
                pos += 2
                while pos < length and source[pos] in "0123456789abcdefABCDEF":
                    pos += 1
                text = source[start:pos]
                tokens.append(Token("int", text, line, int(text, 16)))
            else:
                while pos < length and source[pos].isdigit():
                    pos += 1
                text = source[start:pos]
                tokens.append(Token("int", text, line, int(text)))
            continue
        if ch == '"':
            start = pos + 1
            pos += 1
            while pos < length and source[pos] != '"':
                if source[pos] == "\n":
                    raise ScriptSyntaxError("unterminated string", line)
                pos += 1
            if pos >= length:
                raise ScriptSyntaxError("unterminated string", line)
            tokens.append(Token("string", source[start:pos], line))
            pos += 1
            continue
        if ch.isalpha() or ch == "_":
            start = pos
            while pos < length and (source[pos].isalnum() or source[pos] == "_"):
                pos += 1
            text = source[start:pos]
            kind = "keyword" if text in KEYWORDS else "name"
            tokens.append(Token(kind, text, line))
            continue
        for operator in _OPERATORS:
            if source.startswith(operator, pos):
                tokens.append(Token("op", operator, line))
                pos += len(operator)
                break
        else:
            raise ScriptSyntaxError(f"unexpected character {ch!r}", line)
    tokens.append(Token("eof", "", line))
    return tokens
