"""Fletcher32 sources for each §6 virtualization candidate.

The eBPF assembly lives in :mod:`repro.workloads.fletcher32`; this module
holds the mini-wasm text and the script source (shipped to devices as-is,
which is why script 'code size' is source size in Table 2).
"""

from __future__ import annotations

#: wat-lite source; linear memory holds the input at offset 0,
#: main(n_bytes) returns the checksum.
WASM_FLETCHER32 = """
module pages=1
func main params=1 locals=5
    ; locals: 0=n_bytes 1=sum1 2=sum2 3=words 4=tlen 5=i
    i32.const 65535
    local.set 1
    i32.const 65535
    local.set 2
    local.get 0
    i32.const 1
    i32.shr_u
    local.set 3
    block
    loop
        local.get 3
        i32.eqz
        br_if 1
        local.get 3
        local.set 4
        local.get 4
        i32.const 359
        i32.gt_u
        if
            i32.const 359
            local.set 4
        end
        local.get 3
        local.get 4
        i32.sub
        local.set 3
        loop
            local.get 1
            local.get 5
            i32.load8_u 0
            local.get 5
            i32.load8_u 1
            i32.const 8
            i32.shl
            i32.or
            i32.add
            local.set 1
            local.get 2
            local.get 1
            i32.add
            local.set 2
            local.get 5
            i32.const 2
            i32.add
            local.set 5
            local.get 4
            i32.const 1
            i32.sub
            local.tee 4
            i32.const 0
            i32.ne
            br_if 0
        end
        local.get 1
        i32.const 65535
        i32.and
        local.get 1
        i32.const 16
        i32.shr_u
        i32.add
        local.set 1
        local.get 2
        i32.const 65535
        i32.and
        local.get 2
        i32.const 16
        i32.shr_u
        i32.add
        local.set 2
        br 0
    end
    end
    local.get 1
    i32.const 65535
    i32.and
    local.get 1
    i32.const 16
    i32.shr_u
    i32.add
    local.set 1
    local.get 2
    i32.const 65535
    i32.and
    local.get 2
    i32.const 16
    i32.shr_u
    i32.add
    local.set 2
    local.get 2
    i32.const 16
    i32.shl
    local.get 1
    i32.or
    return
end
"""

#: Script source, MicroPython-candidate formatting (compact).
SCRIPT_FLETCHER32_PY = """\
func fletcher32(d, n) {
  var s1 = 65535;
  var s2 = 65535;
  var w = n / 2;
  var i = 0;
  while (w > 0) {
    var t = w;
    if (t > 359) { t = 359; }
    w = w - t;
    while (t > 0) {
      s1 = s1 + (d[i] | (d[i + 1] << 8));
      s2 = s2 + s1;
      i = i + 2;
      t = t - 1;
    }
    s1 = (s1 & 65535) + (s1 >> 16);
    s2 = (s2 & 65535) + (s2 >> 16);
  }
  s1 = (s1 & 65535) + (s1 >> 16);
  s2 = (s2 & 65535) + (s2 >> 16);
  return (s2 << 16) | s1;
}
return fletcher32(input, len(input));
"""

#: Same algorithm, RIOTjs-candidate formatting (JS programs carry more
#: ceremony; the paper measures 593 B vs MicroPython's 497 B).
SCRIPT_FLETCHER32_JS = """\
# fletcher32 checksum module (RIOT.js style)
# Computes the 32-bit Fletcher checksum over the byte buffer `input`.
func fletcher32(data, nbytes) {
  var sum1 = 65535;
  var sum2 = 65535;
  var words = nbytes / 2;
  var index = 0;
  while (words > 0) {
    var tlen = words;
    if (tlen > 359) { tlen = 359; }
    words = words - tlen;
    while (tlen > 0) {
      sum1 = sum1 + (data[index] | (data[index + 1] << 8));
      sum2 = sum2 + sum1;
      index = index + 2;
      tlen = tlen - 1;
    }
    sum1 = (sum1 & 65535) + (sum1 >> 16);
    sum2 = (sum2 & 65535) + (sum2 >> 16);
  }
  sum1 = (sum1 & 65535) + (sum1 >> 16);
  sum2 = (sum2 & 65535) + (sum2 >> 16);
  return (sum2 << 16) | sum1;
}
return fletcher32(input, len(input));
"""
