"""femtoC intrinsics: the callable surface of a container.

Each intrinsic lowers to an eBPF helper call (or an inline load for the
``ctx_*`` accessors).  This mirrors the real toolchain, where the C
sources call the ``bpf_*`` helpers declared in ``bpf/bpfapi/helpers.h``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vm import helpers as h


@dataclass(frozen=True)
class Intrinsic:
    """One helper-backed builtin function."""

    name: str
    helper_id: int
    arg_count: int
    #: "value"   -> plain args in r1..rN, result in r0;
    #: "fetch"   -> (key) with an output pointer in r2, returns the value;
    #: "saul"    -> (handle) with a phydat pointer in r2, returns val[0].
    form: str = "value"


INTRINSICS: dict[str, Intrinsic] = {
    "store_local": Intrinsic("store_local", h.BPF_STORE_LOCAL, 2),
    "store_global": Intrinsic("store_global", h.BPF_STORE_GLOBAL, 2),
    "store_tenant": Intrinsic("store_tenant", h.BPF_STORE_TENANT, 2),
    "fetch_local": Intrinsic("fetch_local", h.BPF_FETCH_LOCAL, 1, "fetch"),
    "fetch_global": Intrinsic("fetch_global", h.BPF_FETCH_GLOBAL, 1, "fetch"),
    "fetch_tenant": Intrinsic("fetch_tenant", h.BPF_FETCH_TENANT, 1, "fetch"),
    "now_ms": Intrinsic("now_ms", h.BPF_NOW_MS, 0),
    "ztimer_now": Intrinsic("ztimer_now", h.BPF_ZTIMER_NOW, 0),
    "saul_find": Intrinsic("saul_find", h.BPF_SAUL_REG_FIND_TYPE, 1),
    "saul_read": Intrinsic("saul_read", h.BPF_SAUL_REG_READ, 1, "saul"),
    "saul_write": Intrinsic("saul_write", h.BPF_SAUL_REG_WRITE, 2),
    "gcoap_resp_init": Intrinsic("gcoap_resp_init", h.BPF_GCOAP_RESP_INIT, 2),
    "coap_add_format": Intrinsic("coap_add_format", h.BPF_COAP_ADD_FORMAT, 2),
    "coap_opt_finish": Intrinsic("coap_opt_finish", h.BPF_COAP_OPT_FINISH, 2),
    "coap_get_pdu": Intrinsic("coap_get_pdu", h.BPF_COAP_GET_PDU, 1),
}

#: Context accessors: name -> load width in bytes.
CTX_ACCESSORS = {
    "ctx_u8": 1,
    "ctx_u16": 2,
    "ctx_u32": 4,
    "ctx_u64": 8,
}
