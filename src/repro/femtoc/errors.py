"""Compiler diagnostics."""

from __future__ import annotations


class CompileError(Exception):
    """Source construct that cannot be lowered to eBPF."""

    def __init__(self, message: str, line: int | None = None):
        super().__init__(message if line is None else f"line {line}: {message}")
        self.line = line
