"""femtoC: compile the script language down to eBPF bytecode."""

from repro.femtoc.compiler import Compiler, compile_source
from repro.femtoc.errors import CompileError
from repro.femtoc.intrinsics import CTX_ACCESSORS, INTRINSICS, Intrinsic

__all__ = [
    "CTX_ACCESSORS",
    "Compiler",
    "CompileError",
    "INTRINSICS",
    "Intrinsic",
    "compile_source",
]
