"""femtoC — a tiny compiler from the script language to eBPF bytecode.

The paper's containers are written in C and compiled with LLVM's eBPF
backend; this module provides the equivalent authoring experience for the
reproduction: the same source language the script runtimes interpret
(§ ``repro.runtimes.script``) compiles down to verifier-clean eBPF that
runs in a Femto-Container at eBPF speed.

Supported subset:

* ``var`` declarations, assignments, integer arithmetic/bit operations,
  comparisons (unsigned), ``!``/unary ``-``, short-circuit ``&&``/``||``;
* ``if``/``else``, ``while``, ``return``;
* intrinsic calls lowering to bpf helpers (``fetch_global``, ``saul_read``,
  ``now_ms``... see :mod:`repro.femtoc.intrinsics`) plus ``ctx_u8/16/32/64``
  context accessors and ``trace(v)`` (bpf_printf with a rodata format);
* no user-defined functions, strings or heap — exactly the restrictions
  the eBPF target imposes on real Femto-Container C code.

Lowering model: every variable lives in an 8-byte stack slot addressed
off r10; expressions evaluate on a small register stack (r6..r9, the
registers our helpers never clobber); the context pointer is spilled to a
reserved slot in the prologue so it survives helper calls.
"""

from __future__ import annotations

import itertools

from repro.femtoc.errors import CompileError
from repro.femtoc.intrinsics import CTX_ACCESSORS, INTRINSICS
from repro.runtimes.script import nodes
from repro.runtimes.script.parser import parse
from repro.vm import helpers as h
from repro.vm.builder import ProgramBuilder, R
from repro.vm.program import Program

#: Expression evaluation registers (helpers never clobber r6..r9).
_EXPR_REGS = (6, 7, 8, 9)

#: Stack layout: [0..7] saved ctx pointer, [8..15] helper scratch,
#: variables from byte 16 upward.
_CTX_SLOT = 0
_SCRATCH_SLOT = 8
_VARS_BASE = 16

_CMP_OPS = {
    "==": "jeq", "!=": "jne", "<": "jlt", ">": "jgt",
    "<=": "jle", ">=": "jge",
}
_ALU_OPS = {
    "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod",
    "&": "and", "|": "or", "^": "xor", "<<": "lsh", ">>": "rsh",
}

_TRACE_FORMAT = b"trace: %d\x00"


class Compiler:
    """One compilation unit (the top-level statement list)."""

    def __init__(self, script: nodes.Script, name: str = "femtoc",
                 stack_size: int = 512):
        self.script = script
        self.builder = ProgramBuilder(name=name, rodata=_TRACE_FORMAT)
        self.slots: dict[str, int] = {}
        self.stack_size = stack_size
        self._labels = itertools.count()
        self._free_regs = list(_EXPR_REGS)

    # -- register stack ----------------------------------------------------

    def _acquire(self, line: int) -> int:
        if not self._free_regs:
            raise CompileError(
                "expression too deeply nested for the register allocator "
                "(split it with intermediate variables)", line)
        return self._free_regs.pop(0)

    def _release(self, reg: int) -> None:
        self._free_regs.insert(0, reg)

    def _label(self, stem: str) -> str:
        return f"{stem}_{next(self._labels)}"

    # -- variables ----------------------------------------------------------

    def _slot_of(self, name: str, line: int, declare: bool = False) -> int:
        if declare:
            if name in self.slots:
                raise CompileError(f"variable {name!r} already declared", line)
            offset = _VARS_BASE + 8 * len(self.slots)
            if offset + 8 > self.stack_size:
                raise CompileError(
                    f"too many variables for the {self.stack_size} B stack",
                    line)
            self.slots[name] = offset
            return offset
        if name not in self.slots:
            raise CompileError(f"unknown variable {name!r}", line)
        return self.slots[name]

    # -- compilation --------------------------------------------------------

    def compile(self) -> Program:
        b = self.builder
        # Prologue: spill the context pointer so helper calls can't eat it.
        b.stxdw(R(10), _CTX_SLOT, R(1))
        for statement in self.script.body:
            self._statement(statement)
        # Implicit `return 0` when control reaches the end.
        b.mov(R(0), 0)
        b.exit_()
        return b.build()

    def _statement(self, node: nodes.Node) -> None:
        b = self.builder
        if isinstance(node, nodes.VarDecl):
            offset = self._slot_of(node.name, node.line, declare=True)
            reg = self._expression(
                node.initializer
                if node.initializer is not None
                else nodes.Literal(value=0, line=node.line)
            )
            b.stxdw(R(10), offset, R(reg))
            self._release(reg)
        elif isinstance(node, nodes.Assign):
            offset = self._slot_of(node.name, node.line)
            reg = self._expression(node.value)
            b.stxdw(R(10), offset, R(reg))
            self._release(reg)
        elif isinstance(node, nodes.Return):
            if node.value is not None:
                reg = self._expression(node.value)
                b.mov(R(0), R(reg))
                self._release(reg)
            else:
                b.mov(R(0), 0)
            b.exit_()
        elif isinstance(node, nodes.If):
            self._if(node)
        elif isinstance(node, nodes.While):
            self._while(node)
        elif isinstance(node, nodes.ExprStatement):
            reg = self._expression(node.expression)
            self._release(reg)
        elif isinstance(node, nodes.FuncDecl):
            raise CompileError(
                "user-defined functions are not supported by the eBPF "
                "target (inline the logic)", node.line)
        else:
            raise CompileError(
                f"cannot compile {type(node).__name__}", node.line)

    def _if(self, node: nodes.If) -> None:
        b = self.builder
        else_label = self._label("else")
        end_label = self._label("endif")
        cond = self._expression(node.condition)
        b.branch("jeq", R(cond), 0, else_label)
        self._release(cond)
        for statement in node.then_body:
            self._statement(statement)
        b.jump(end_label)
        b.label(else_label)
        for statement in node.else_body:
            self._statement(statement)
        b.label(end_label)

    def _while(self, node: nodes.While) -> None:
        b = self.builder
        head = self._label("while")
        end = self._label("endwhile")
        b.label(head)
        cond = self._expression(node.condition)
        b.branch("jeq", R(cond), 0, end)
        self._release(cond)
        for statement in node.body:
            self._statement(statement)
        b.jump(head)
        b.label(end)

    # -- expressions --------------------------------------------------------------

    def _expression(self, node: nodes.Node) -> int:
        """Lower an expression; returns the register holding the value."""
        b = self.builder
        if isinstance(node, nodes.Literal):
            reg = self._acquire(node.line)
            value = node.value
            if isinstance(value, bool):
                value = int(value)
            if not isinstance(value, int):
                raise CompileError(
                    "only integer literals compile to eBPF, got "
                    f"{type(node.value).__name__}", node.line)
            if -(1 << 31) <= value < (1 << 31):
                b.mov(R(reg), value)
            else:
                b.lddw(R(reg), value & ((1 << 64) - 1))
            return reg
        if isinstance(node, nodes.Name):
            offset = self._slot_of(node.identifier, node.line)
            reg = self._acquire(node.line)
            b.ldxdw(R(reg), R(10), offset)
            return reg
        if isinstance(node, nodes.Unary):
            return self._unary(node)
        if isinstance(node, nodes.Binary):
            return self._binary(node)
        if isinstance(node, nodes.Call):
            return self._call(node)
        if isinstance(node, nodes.Index):
            raise CompileError(
                "indexing compiles only through ctx_u8/16/32/64 accessors",
                node.line)
        raise CompileError(
            f"cannot compile expression {type(node).__name__}", node.line)

    def _unary(self, node: nodes.Unary) -> int:
        b = self.builder
        reg = self._expression(node.operand)
        if node.operator == "-":
            b.neg(R(reg))
        else:  # '!'
            true_label = self._label("not")
            end = self._label("endnot")
            b.branch("jeq", R(reg), 0, true_label)
            b.mov(R(reg), 0)
            b.jump(end)
            b.label(true_label)
            b.mov(R(reg), 1)
            b.label(end)
        return reg

    def _binary(self, node: nodes.Binary) -> int:
        b = self.builder
        operator = node.operator
        if operator in ("&&", "||"):
            return self._logical(node)
        left = self._expression(node.left)
        right = self._expression(node.right)
        if operator in _ALU_OPS:
            b.alu(_ALU_OPS[operator], R(left), R(right))
            self._release(right)
            return left
        if operator in _CMP_OPS:
            true_label = self._label("cmp")
            end = self._label("endcmp")
            b.branch(_CMP_OPS[operator], R(left), R(right), true_label)
            b.mov(R(left), 0)
            b.jump(end)
            b.label(true_label)
            b.mov(R(left), 1)
            b.label(end)
            self._release(right)
            return left
        raise CompileError(f"operator {operator!r} not supported", node.line)

    def _logical(self, node: nodes.Binary) -> int:
        """Short-circuit &&/|| producing 0/1."""
        b = self.builder
        result = self._expression(node.left)
        short = self._label("short")
        end = self._label("endlogic")
        if node.operator == "&&":
            b.branch("jeq", R(result), 0, short)
        else:
            b.branch("jne", R(result), 0, short)
        self._release(result)
        right = self._expression(node.right)
        if right != result:  # keep the value in one register
            b.mov(R(result), R(right))
            self._release(right)
            self._free_regs.remove(result)
        # Normalize the surviving operand to 0/1.
        norm_true = self._label("norm")
        b.branch("jne", R(result), 0, norm_true)
        b.mov(R(result), 0)
        b.jump(end)
        b.label(norm_true)
        b.mov(R(result), 1)
        b.jump(end)
        b.label(short)
        b.mov(R(result), 0 if node.operator == "&&" else 1)
        b.label(end)
        return result

    # -- calls -------------------------------------------------------------------------

    def _call(self, node: nodes.Call) -> int:
        b = self.builder
        name = node.callee

        if name in CTX_ACCESSORS:
            if len(node.arguments) != 1:
                raise CompileError(f"{name} takes one offset", node.line)
            offset_node = node.arguments[0]
            width = CTX_ACCESSORS[name]
            if isinstance(offset_node, nodes.Literal) \
                    and isinstance(offset_node.value, int) \
                    and 0 <= offset_node.value < (1 << 15):
                # Constant offset: single load off the reloaded pointer.
                reg = self._acquire(node.line)
                b.ldxdw(R(reg), R(10), _CTX_SLOT)
                b.load(R(reg), R(reg), offset_node.value, size=width)
                return reg
            # Computed offset: pointer arithmetic, checked at runtime by
            # the access list like any other memory access.
            offset = self._expression(offset_node)
            base = self._acquire(node.line)
            b.ldxdw(R(base), R(10), _CTX_SLOT)
            b.add(R(base), R(offset))
            self._release(offset)
            b.load(R(base), R(base), 0, size=width)
            return base

        if name == "trace":
            if len(node.arguments) != 1:
                raise CompileError("trace takes one value", node.line)
            value = self._expression(node.arguments[0])
            b.lddwr(R(1), 0)                           # "trace: %d"
            b.mov(R(2), R(value))
            b.call(h.BPF_PRINTF)
            result = self._acquire(node.line)
            b.mov(R(result), R(value))
            self._release(value)
            return result

        intrinsic = INTRINSICS.get(name)
        if intrinsic is None:
            raise CompileError(f"unknown function {name!r} (user functions "
                               "are not compilable)", node.line)
        if len(node.arguments) != intrinsic.arg_count:
            raise CompileError(
                f"{name} expects {intrinsic.arg_count} argument(s)",
                node.line)
        arg_regs = [self._expression(arg) for arg in node.arguments]
        if intrinsic.form == "fetch":
            b.mov(R(1), R(arg_regs[0]))
            b.mov(R(2), R(10))
            b.add(R(2), _SCRATCH_SLOT)
            b.call(intrinsic.helper_id)
            result = arg_regs[0]
            b.ldxw(R(result), R(10), _SCRATCH_SLOT)
            return result
        if intrinsic.form == "saul":
            b.mov(R(1), R(arg_regs[0]))
            b.mov(R(2), R(10))
            b.add(R(2), _SCRATCH_SLOT)
            b.call(intrinsic.helper_id)
            result = arg_regs[0]
            b.ldxh(R(result), R(10), _SCRATCH_SLOT)    # phydat val[0]
            return result
        for index, reg in enumerate(arg_regs, start=1):
            b.mov(R(index), R(reg))
        for reg in arg_regs[1:]:
            self._release(reg)
        b.call(intrinsic.helper_id)
        result = arg_regs[0] if arg_regs else self._acquire(node.line)
        b.mov(R(result), R(0))
        return result


def compile_source(source: str, name: str = "femtoc",
                   stack_size: int = 512) -> Program:
    """Compile femtoC source text into a verifier-ready eBPF program."""
    return Compiler(parse(source), name=name, stack_size=stack_size).compile()
