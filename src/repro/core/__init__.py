"""The Femto-Container middleware — the paper's primary contribution.

Public surface: :class:`~repro.core.engine.HostingEngine` (attach/execute
containers on hooks), :class:`~repro.core.container.FemtoContainer`,
tenants, contracts, key-value stores and the helper system-call layer.
"""

from repro.core.container import (
    ContainerRun,
    ContainerState,
    FaultRecord,
    FemtoContainer,
)
from repro.core.engine import HookFiring, HostingEngine, SlotSnapshot
from repro.core.errors import AttachError, EngineError, UnknownHookError
from repro.core.hooks import (
    FC_HOOK_COAP,
    FC_HOOK_FANOUT,
    FC_HOOK_NET_RX,
    FC_HOOK_SCHED,
    FC_HOOK_SENSOR_READ,
    FC_HOOK_TIMER,
    Hook,
    HookMode,
    hook_uuid,
)
from repro.core.kvstore import KeyValueStore
from repro.core.policy import (
    ContainerContract,
    GrantedPolicy,
    HookPolicy,
    MemoryGrant,
    PolicyError,
    grant,
)
from repro.core.syscalls import (
    COAP_CODE_CHANGED,
    COAP_CODE_CONTENT,
    CoapResponseContext,
    build_helper_registry,
    format_s16_dfp,
)
from repro.core.tenant import Tenant

__all__ = [
    "AttachError",
    "COAP_CODE_CHANGED",
    "COAP_CODE_CONTENT",
    "CoapResponseContext",
    "ContainerContract",
    "ContainerRun",
    "ContainerState",
    "EngineError",
    "FC_HOOK_COAP",
    "FC_HOOK_FANOUT",
    "FC_HOOK_NET_RX",
    "FC_HOOK_SCHED",
    "FC_HOOK_SENSOR_READ",
    "FC_HOOK_TIMER",
    "FaultRecord",
    "FemtoContainer",
    "GrantedPolicy",
    "Hook",
    "HookFiring",
    "HookMode",
    "HookPolicy",
    "HostingEngine",
    "KeyValueStore",
    "MemoryGrant",
    "PolicyError",
    "SlotSnapshot",
    "Tenant",
    "UnknownHookError",
    "build_helper_registry",
    "format_s16_dfp",
    "grant",
    "hook_uuid",
]
