"""Hooks (launchpads) — the only places containers can execute from (§5, §7).

Hooks are pre-compiled into the RTOS firmware; attaching or replacing a
container on a hook needs no firmware change, but adding a *new* hook does
(that asymmetry is the core of the paper's update story).  Each hook has a
UUID, which SUIT manifests use as the storage-location identifier when
deploying a container over the network.

Execution modes:

* ``sync`` — the hook fires inline on a hot code path (the scheduler hook
  of Listing 2): the container runs synchronously and its cost is added to
  the path (Table 4 measures exactly this).
* ``thread`` — the firing posts an event to the container's worker thread
  (the paper's "each Femto-Container runs in a separate thread"); used by
  timer- and network-triggered business logic.
"""

from __future__ import annotations

import enum
import uuid as uuid_module
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.policy import HookPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.container import FemtoContainer

#: Namespace for deterministic hook UUIDs (uuid5 of the hook name).
_HOOK_NAMESPACE = uuid_module.UUID("8d1b6b2e-70e5-4b86-9f3a-4f1d1ad0fc55")

# Well-known hook names (the firmware's pre-provisioned launchpads).
FC_HOOK_SCHED = "fc.hook.sched"
FC_HOOK_TIMER = "fc.hook.timer"
FC_HOOK_COAP = "fc.hook.coap"
FC_HOOK_SENSOR_READ = "fc.hook.sensor-read"
FC_HOOK_NET_RX = "fc.hook.net-rx"
#: Synchronous benchmark launchpad for the multi-instance fan-out
#: scenario (one image, K tenants x M instances on one hook).  Not part
#: of the default firmware build — scenarios register it explicitly, the
#: way a debug firmware would compile in an extra pad.
FC_HOOK_FANOUT = "fc.hook.fanout"


class HookMode(enum.Enum):
    SYNC = "sync"
    THREAD = "thread"


def hook_uuid(name: str) -> uuid_module.UUID:
    """Deterministic UUID for a hook name (SUIT storage location id)."""
    return uuid_module.uuid5(_HOOK_NAMESPACE, name)


@dataclass
class Hook:
    """One launchpad compiled into the firmware."""

    name: str
    mode: HookMode = HookMode.SYNC
    policy: HookPolicy = field(default_factory=HookPolicy)
    uuid: uuid_module.UUID = None  # type: ignore[assignment]
    #: Containers attached, in attach order (multiple tenants may share a
    #: hook; §10.3 "Multiple containers can be attached to the same
    #: launchpad hook").
    containers: list["FemtoContainer"] = field(default_factory=list)
    #: Number of times the hook fired (including with no container).
    fires: int = 0
    #: Fig 3's "Bypass with Default Result": the value the launchpad uses
    #: when no container is attached or an attached container faulted.
    default_result: int = 0
    #: §11 extension: per-tenant privilege overrides.  The paper notes
    #: "there is only one fixed set of privileges possible per hook. In
    #: case 2 tenants have different privileges, a second hook must be
    #: made available" — this map removes that limitation without
    #: duplicating hooks.
    tenant_policies: dict[str, HookPolicy] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.uuid is None:
            self.uuid = hook_uuid(self.name)

    def policy_for(self, tenant_name: str | None) -> HookPolicy:
        """Resolve the OS-side ceiling for a given tenant."""
        if tenant_name is not None and tenant_name in self.tenant_policies:
            return self.tenant_policies[tenant_name]
        return self.policy

    @property
    def occupied(self) -> bool:
        return bool(self.containers)

    def __hash__(self) -> int:
        return hash(self.uuid)
