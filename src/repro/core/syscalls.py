"""Helper (system call) implementations bridging containers to the RTOS.

These are the concrete functions behind the helper ids of
:mod:`repro.vm.helpers`: key-value store access, timers, SAUL sensor reads,
CoAP response construction and string formatting — the complete bpfapi
surface used by the paper's examples (Listing 2, the §8.3 sensor/CoAP
snippets).

Every pointer argument a container passes is a *virtual* address resolved
through its access list, so a malicious container cannot use helpers to
escape its sandbox: reads and writes through helper pointers fault exactly
like direct load/store instructions would.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.vm import helpers as h
from repro.vm.errors import HelperFault
from repro.vm.helpers import HelperRegistry
from repro.vm.memory import MemoryRegion, Permission

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import HostingEngine
    from repro.vm.interpreter import Interpreter

#: Virtual address where the CoAP PDU payload buffer is mapped.
PDU_PAYLOAD_BASE = 0x6800_0000

#: CoAP code constants containers use (subset of RFC 7252).
COAP_CODE_CONTENT = 0x45  # 2.05
COAP_CODE_CHANGED = 0x44  # 2.04

_U32 = (1 << 32) - 1


@dataclass
class CoapResponseContext:
    """The ``bpf_coap_ctx_t`` a CoAP-triggered container manipulates.

    The network stack creates one per request; the hosting engine maps its
    payload buffer into the container's address space for the duration of
    the execution.
    """

    token_length: int = 2
    payload_capacity: int = 64
    code: int = 0
    content_format: int | None = None
    payload_length: int = 0
    region: MemoryRegion = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.region is None:
            self.region = MemoryRegion.zeroed(
                "coap-pdu", PDU_PAYLOAD_BASE, self.payload_capacity,
                Permission.READ_WRITE,
            )

    @property
    def header_length(self) -> int:
        """Bytes before the payload: base header, token, options, marker."""
        options = 0 if self.content_format is None else 2
        return 4 + self.token_length + options + 1

    def payload_bytes(self) -> bytes:
        return self.region.read_bytes(PDU_PAYLOAD_BASE, self.payload_length)


def _current(engine: "HostingEngine"):
    container = engine.current_container
    if container is None:
        raise HelperFault("helper called outside a container execution")
    return container


def _current_pdu(engine: "HostingEngine") -> CoapResponseContext:
    pdu = engine.current_pdu
    if pdu is None:
        raise HelperFault("CoAP helper called outside a CoAP-triggered run")
    return pdu


def format_s16_dfp(value: int, fp_digits: int) -> str:
    """RIOT's ``fmt_s16_dfp``: render value * 10^fp_digits as decimal."""
    if value >= 1 << 15:
        value -= 1 << 16
    if fp_digits == 0:
        return str(value)
    if fp_digits > 0:
        return str(value) + "0" * fp_digits
    divisor = 10 ** (-fp_digits)
    sign = "-" if value < 0 else ""
    magnitude = abs(value)
    return f"{sign}{magnitude // divisor}.{magnitude % divisor:0{-fp_digits}d}"


def _format_printf(fmt: bytes, args: list[int]) -> str:
    """Minimal C-style formatter supporting %d/%u/%x/%c/%%."""
    out: list[str] = []
    arg_index = 0
    i = 0
    text = fmt.decode("ascii", errors="replace")
    while i < len(text):
        ch = text[i]
        if ch != "%" or i + 1 >= len(text):
            out.append(ch)
            i += 1
            continue
        spec = text[i + 1]
        i += 2
        if spec == "%":
            out.append("%")
            continue
        value = args[arg_index] if arg_index < len(args) else 0
        arg_index += 1
        if spec == "d":
            signed = value - (1 << 64) if value >= 1 << 63 else value
            out.append(str(signed))
        elif spec == "u":
            out.append(str(value))
        elif spec == "x":
            out.append(format(value, "x"))
        elif spec == "c":
            out.append(chr(value & 0x7F))
        else:
            out.append("%" + spec)
    return "".join(out)


def build_helper_registry(engine: "HostingEngine") -> HelperRegistry:
    """Instantiate the full bpfapi helper set bound to ``engine``."""
    registry = HelperRegistry()

    # -- tracing / memory -------------------------------------------------

    def bpf_printf(vm: "Interpreter", fmt_ptr, a1, a2, a3, _r5):
        fmt = vm.access_list.read_cstring(fmt_ptr)
        engine.trace_log.append(_format_printf(fmt, [a1, a2, a3]))
        return 0

    def bpf_memcpy(vm: "Interpreter", dst, src, length, _r4, _r5):
        length &= 0xFFFF
        payload = vm.access_list.read_bytes(src, length)
        vm.access_list.write_bytes(dst, payload)
        return dst

    # -- key-value stores ---------------------------------------------------

    def _store_for(scope: str):
        container = _current(engine)
        if scope == "local":
            return container.local_store
        if scope == "global":
            return engine.global_store
        if container.tenant is None:
            raise HelperFault("container has no tenant for tenant-store access")
        return container.tenant.store

    def _make_store(scope: str):
        def bpf_store(vm: "Interpreter", key, value, _r3, _r4, _r5):
            _store_for(scope).store(key & _U32, value & _U32)
            return 0

        return bpf_store

    def _make_fetch(scope: str):
        def bpf_fetch(vm: "Interpreter", key, value_ptr, _r3, _r4, _r5):
            value = _store_for(scope).fetch(key & _U32)
            vm.access_list.store(value_ptr, 4, value)
            return 0

        return bpf_fetch

    # -- time -------------------------------------------------------------------

    def bpf_now_ms(vm: "Interpreter", _r1, _r2, _r3, _r4, _r5):
        return int(engine.kernel.clock.time_ms)

    def bpf_ztimer_now(vm: "Interpreter", _r1, _r2, _r3, _r4, _r5):
        return int(engine.kernel.clock.time_us)

    def bpf_ztimer_periodic_wakeup(vm, _last_ptr, _period, _r3, _r4, _r5):
        # Containers are event-driven; periodic scheduling is configured on
        # the hook, so inside the VM this is a no-op acknowledgement.
        return 0

    # -- SAUL ----------------------------------------------------------------------

    def bpf_saul_reg_find_nth(vm: "Interpreter", index, _r2, _r3, _r4, _r5):
        device = engine.saul.find_nth(index)
        return 0 if device is None else index + 1

    def bpf_saul_reg_find_type(vm: "Interpreter", device_class, _2, _3, _4, _5):
        found = engine.saul.find_type(device_class)
        return 0 if found is None else found[0] + 1

    def _device(handle: int):
        device = engine.saul.find_nth(handle - 1) if handle else None
        if device is None:
            raise HelperFault(f"invalid SAUL handle {handle}")
        return device

    def bpf_saul_reg_read(vm: "Interpreter", handle, phydat_ptr, _3, _4, _5):
        data = _device(handle).read()
        values = [
            max(-(1 << 15), min(v, (1 << 15) - 1)) for v in data.values[:3]
        ]
        values += [0] * (3 - len(values))
        packed = struct.pack("<hhhBb", *values, 0, data.scale)
        vm.access_list.write_bytes(phydat_ptr, packed)
        return len(data.values)

    def bpf_saul_reg_write(vm: "Interpreter", handle, value, _3, _4, _5):
        return _device(handle).write(value & _U32)

    # -- CoAP response construction --------------------------------------------------

    def bpf_gcoap_resp_init(vm: "Interpreter", _ctx, code, _3, _4, _5):
        _current_pdu(engine).code = code & 0xFF
        return 0

    def bpf_coap_add_format(vm: "Interpreter", _ctx, content_format, _3, _4, _5):
        _current_pdu(engine).content_format = content_format & 0xFFFF
        return 0

    def bpf_coap_opt_finish(vm: "Interpreter", _ctx, _flags, _3, _4, _5):
        return _current_pdu(engine).header_length

    def bpf_coap_get_pdu(vm: "Interpreter", _ctx, _r2, _3, _4, _5):
        pdu = _current_pdu(engine)
        if all(region is not pdu.region for region in vm.access_list.regions):
            vm.access_list.add(pdu.region)
        return PDU_PAYLOAD_BASE

    # -- formatting ------------------------------------------------------------------

    def bpf_fmt_u32_dec(vm: "Interpreter", buf_ptr, value, _3, _4, _5):
        text = str(value & _U32).encode("ascii")
        vm.access_list.write_bytes(buf_ptr, text)
        return len(text)

    def bpf_fmt_s16_dfp(vm: "Interpreter", buf_ptr, value, fp_digits, _4, _5):
        fp = fp_digits - (1 << 64) if fp_digits >= 1 << 63 else fp_digits
        text = format_s16_dfp(value & 0xFFFF, int(fp)).encode("ascii")
        vm.access_list.write_bytes(buf_ptr, text)
        return len(text)

    # -- registration -------------------------------------------------------------------

    registry.register(h.BPF_PRINTF, bpf_printf, cost_key="trace")
    registry.register(h.BPF_MEMCPY, bpf_memcpy, cost_key="mem")
    registry.register(h.BPF_STORE_LOCAL, _make_store("local"), cost_key="kv")
    registry.register(h.BPF_STORE_GLOBAL, _make_store("global"), cost_key="kv")
    registry.register(h.BPF_FETCH_LOCAL, _make_fetch("local"), cost_key="kv")
    registry.register(h.BPF_FETCH_GLOBAL, _make_fetch("global"), cost_key="kv")
    registry.register(h.BPF_STORE_TENANT, _make_store("tenant"), cost_key="kv")
    registry.register(h.BPF_FETCH_TENANT, _make_fetch("tenant"), cost_key="kv")
    registry.register(h.BPF_NOW_MS, bpf_now_ms, cost_key="time")
    registry.register(h.BPF_ZTIMER_NOW, bpf_ztimer_now, cost_key="time")
    registry.register(h.BPF_ZTIMER_PERIODIC_WAKEUP, bpf_ztimer_periodic_wakeup,
                      cost_key="time")
    registry.register(h.BPF_SAUL_REG_FIND_NTH, bpf_saul_reg_find_nth,
                      cost_key="saul")
    registry.register(h.BPF_SAUL_REG_FIND_TYPE, bpf_saul_reg_find_type,
                      cost_key="saul")
    registry.register(h.BPF_SAUL_REG_READ, bpf_saul_reg_read, cost_key="saul")
    registry.register(h.BPF_SAUL_REG_WRITE, bpf_saul_reg_write, cost_key="saul")
    registry.register(h.BPF_GCOAP_RESP_INIT, bpf_gcoap_resp_init,
                      cost_key="coap")
    registry.register(h.BPF_COAP_ADD_FORMAT, bpf_coap_add_format,
                      cost_key="coap")
    registry.register(h.BPF_COAP_OPT_FINISH, bpf_coap_opt_finish,
                      cost_key="coap")
    registry.register(h.BPF_COAP_GET_PDU, bpf_coap_get_pdu, cost_key="coap")
    registry.register(h.BPF_FMT_U32_DEC, bpf_fmt_u32_dec, cost_key="fmt")
    registry.register(h.BPF_FMT_S16_DFP, bpf_fmt_s16_dfp, cost_key="fmt")
    return registry
