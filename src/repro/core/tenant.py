"""Tenants: the mutually-distrusting parties deploying containers (§2, §3).

A tenant owns a set of containers and one tenant-scoped key-value store
shared among them.  The threat model's "malicious tenant" is exercised in
tests by running adversarial bytecode under a tenant and asserting that
neither the OS, nor other tenants' stores and memory, are reachable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.kvstore import KeyValueStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.container import FemtoContainer

#: Per-tenant housekeeping struct: identity, permissions, container list
#: head, store reference (the "(and housekeeping)" of §10.3's 340 B).
TENANT_STRUCT_BYTES = 40


@dataclass
class Tenant:
    """One code-deploying party on the device."""

    name: str
    store: KeyValueStore = field(default=None)  # type: ignore[assignment]
    containers: list["FemtoContainer"] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.store is None:
            self.store = KeyValueStore(name=f"{self.name}-store", scope="tenant")

    def adopt(self, container: "FemtoContainer") -> None:
        if container not in self.containers:
            self.containers.append(container)

    @property
    def ram_bytes(self) -> int:
        """Tenant-attributable RAM: housekeeping, store and containers."""
        return TENANT_STRUCT_BYTES + self.store.ram_bytes + sum(
            container.ram_bytes for container in self.containers
        )

    def __hash__(self) -> int:
        return hash(self.name)
