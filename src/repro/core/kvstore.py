"""Key-value stores — the Femto-Container persistence mechanism (§7).

In lieu of a file system, applications load and store 32-bit values by
numerical key.  Three scopes exist, mirroring the paper exactly:

* **local** — private to one container instance, persists across its
  invocations;
* **tenant** — shared by all containers of one tenant (the "optional third
  intermediate-level" store of §7), isolated from other tenants;
* **global** — shared by every container on the device (used by the §8
  examples to hand values from one tenant's sensor container to the
  device-wide thread-counter).

RAM accounting mirrors the C implementation: a fixed per-store header plus
a linked-list entry per key (key + value + next pointer).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Per-store housekeeping struct (list head, lock, owner), bytes.
STORE_HEADER_BYTES = 20
#: Per-entry footprint: 4 B key + 4 B value + 4 B next pointer.
ENTRY_BYTES = 12

_VALUE_MASK = (1 << 32) - 1


@dataclass
class KeyValueStore:
    """One store instance with RIOT-style RAM accounting."""

    name: str
    scope: str = "local"
    _entries: dict[int, int] = field(default_factory=dict)
    #: Lifetime statistics (observability for tests and examples).
    fetches: int = 0
    stores: int = 0

    def fetch(self, key: int) -> int:
        """Read the value for ``key``; missing keys read as 0.

        Matches the C helper semantics: ``bpf_fetch_*`` leaves the output
        zeroed when the key does not exist yet.
        """
        self.fetches += 1
        return self._entries.get(key & _VALUE_MASK, 0)

    def store(self, key: int, value: int) -> None:
        """Store a 32-bit value under a 32-bit key."""
        self.stores += 1
        self._entries[key & _VALUE_MASK] = value & _VALUE_MASK

    def delete(self, key: int) -> bool:
        return self._entries.pop(key & _VALUE_MASK, None) is not None

    def keys(self) -> list[int]:
        return sorted(self._entries)

    def snapshot(self) -> dict[int, int]:
        """Copy of the contents (examples/tests observability)."""
        return dict(self._entries)

    @property
    def entry_count(self) -> int:
        return len(self._entries)

    @property
    def ram_bytes(self) -> int:
        """Current RAM footprint of this store (§10.3 accounting)."""
        return STORE_HEADER_BYTES + ENTRY_BYTES * len(self._entries)

    def __contains__(self, key: int) -> bool:
        return (key & _VALUE_MASK) in self._entries

    def __len__(self) -> int:
        return len(self._entries)
