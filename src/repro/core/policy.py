"""Contracts and permission intersection (§5 "Use of OS Interfaces", §11).

The paper's permission system is deliberately simple: *"the OS restricts
the set of privileges that can be granted, the container specifies the set
of privileges it requires, and the hosting engine grants the intersection
of these sets."*  A :class:`HookPolicy` is the OS side (fixed per hook —
the paper notes one privilege set per hook as a limitation), a
:class:`ContainerContract` is what the container requests, and
:func:`grant` computes the intersection the VM is instantiated with.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vm.memory import Permission


class PolicyError(Exception):
    """The contract requests something the hook can never grant."""


@dataclass(frozen=True)
class MemoryGrant:
    """A named region the OS may expose to containers on a hook."""

    name: str
    start: int
    size: int
    perms: Permission


#: The eBPF-mandated default stack; contracts may negotiate more (§10.2:
#: "An enhanced implementation could however allow the application to
#: request more stack from the RTOS, for example via the contracts").
DEFAULT_STACK_SIZE = 512


@dataclass(frozen=True)
class HookPolicy:
    """OS-side privilege ceiling for one hook (one fixed set per hook)."""

    #: Helper ids callable from this hook; None means all registered.
    allowed_helpers: frozenset[int] | None = None
    #: N_i ceiling for applications attached here.
    max_instructions: int = 4096
    #: N_b ceiling.
    branch_limit: int = 10_000
    #: Whether containers may mutate the hook context struct.
    context_writable: bool = True
    #: Extra memory regions this hook can expose (e.g. a packet buffer).
    memory_grants: tuple[MemoryGrant, ...] = ()
    #: Largest stack the RTOS will hand out on this hook (§10.2 extension).
    max_stack_size: int = 2048


@dataclass(frozen=True)
class ContainerContract:
    """Container-side privilege request."""

    #: Helper ids the application wants; None means "whatever is allowed".
    helpers: frozenset[int] | None = None
    max_instructions: int = 4096
    branch_limit: int = 10_000
    #: Names of hook memory grants the container wants mapped.
    memory_regions: tuple[str, ...] = ()
    #: Stack bytes the application asks the RTOS for (§10.2 extension).
    stack_size: int = DEFAULT_STACK_SIZE


@dataclass(frozen=True)
class GrantedPolicy:
    """The intersection actually enforced on the VM."""

    allowed_helpers: frozenset[int] | None
    max_instructions: int
    branch_limit: int
    context_writable: bool
    memory_grants: tuple[MemoryGrant, ...]
    stack_size: int = DEFAULT_STACK_SIZE


def grant(hook_policy: HookPolicy,
          contract: ContainerContract | None = None) -> GrantedPolicy:
    """Intersect OS ceiling and container request (§11's rule)."""
    contract = contract or ContainerContract()

    if hook_policy.allowed_helpers is None:
        helpers = contract.helpers
    elif contract.helpers is None:
        helpers = hook_policy.allowed_helpers
    else:
        helpers = hook_policy.allowed_helpers & contract.helpers
        missing = contract.helpers - hook_policy.allowed_helpers
        if missing:
            raise PolicyError(
                "contract requests helpers the hook forbids: "
                + ", ".join(f"0x{h:02x}" for h in sorted(missing))
            )

    wanted = set(contract.memory_regions)
    grants = tuple(
        g for g in hook_policy.memory_grants
        if not wanted or g.name in wanted
    )
    unknown = wanted - {g.name for g in hook_policy.memory_grants}
    if unknown:
        raise PolicyError(
            f"contract requests unknown memory regions: {sorted(unknown)}"
        )

    if contract.stack_size < DEFAULT_STACK_SIZE:
        raise PolicyError(
            f"contract stack request {contract.stack_size} below the "
            f"{DEFAULT_STACK_SIZE} B architectural minimum"
        )
    if contract.stack_size > hook_policy.max_stack_size:
        raise PolicyError(
            f"contract requests {contract.stack_size} B of stack but the "
            f"hook grants at most {hook_policy.max_stack_size} B"
        )

    return GrantedPolicy(
        allowed_helpers=helpers,
        max_instructions=min(hook_policy.max_instructions,
                             contract.max_instructions),
        branch_limit=min(hook_policy.branch_limit, contract.branch_limit),
        context_writable=hook_policy.context_writable,
        memory_grants=grants,
        stack_size=contract.stack_size,
    )
