"""The Femto-Container hosting engine (paper §5, §7, Fig 3).

The engine is the middleware core: it owns the firmware's launchpad hooks,
verifies and attaches container images, instantiates their VMs with the
granted privileges, fires hooks when RTOS events occur, contains faults,
and keeps the memory accounting the evaluation reports.

Fault isolation contract: **no exception from hosted bytecode ever
propagates out of** :meth:`HostingEngine.execute` — a faulting container is
recorded and, when a fault threshold is exceeded, detached; the RTOS and
other containers keep running.  The property-based tests drive adversarial
bytecode through this path and assert the kernel never observes a fault.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, NamedTuple

from repro.core.container import (
    ContainerRun,
    ContainerState,
    FaultRecord,
    FemtoContainer,
    VM_CLASSES,
)
from repro.core.errors import AttachError, EngineError, UnknownHookError
from repro.core.hooks import (
    FC_HOOK_COAP,
    FC_HOOK_SCHED,
    FC_HOOK_SENSOR_READ,
    FC_HOOK_TIMER,
    Hook,
    HookMode,
)
from repro.core.kvstore import KeyValueStore
from repro.core.policy import ContainerContract, HookPolicy, grant
from repro.core.syscalls import CoapResponseContext, build_helper_registry
from repro.core.tenant import Tenant
from repro.rtos.kernel import Kernel
from repro.rtos.saul import SaulRegistry
from repro.rtos.thread import Wait
from repro.runtimes.base import RUNTIME_DEFAULT, container_runtime
from repro.vm.errors import VMFault
from repro.vm.memory import AccessList, MemoryRegion, Permission
from repro.vm.program import Program
from repro.vm.supervisor import ContainerSupervisor, SupervisorConfig
from repro.vm.verifier import VerifierConfig
from repro.vm.interpreter import ExecutionStats, VMConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rtos.board import Board
    from repro.vm.supervisor import SlotHealth


class SlotSnapshot(NamedTuple):
    """One slot's runtime baseline (see :meth:`HostingEngine
    .runtime_snapshot`): the container object plus its run/cycle
    counters at snapshot time, and the supervisor's health record for
    the slot (``None`` when unsupervised or never observed)."""

    container: FemtoContainer
    runs: int
    cycles: int
    health: "SlotHealth | None"


@dataclass
class HookFiring:
    """Result of one hook activation."""

    hook: Hook
    runs: list[ContainerRun] = field(default_factory=list)
    dispatch_cycles: int = 0

    @property
    def total_cycles(self) -> int:
        return self.dispatch_cycles + sum(run.cycles for run in self.runs)

    @property
    def results(self) -> list[int | None]:
        return [run.value for run in self.runs]

    @property
    def effective_results(self) -> list[int]:
        """Fig 3 semantics: the control-flow values the firmware consumes.

        An empty hook — or a faulted container — contributes the hook's
        default result ("Bypass with Default Result"), so firmware logic
        downstream of the launchpad always has a well-defined input.
        """
        if not self.runs:
            return [self.hook.default_result]
        return [
            run.value if run.ok and run.value is not None
            else self.hook.default_result
            for run in self.runs
        ]


class HostingEngine:
    """One device's Femto-Container middleware instance."""

    #: Detach a container after this many contained faults (anti-DoS).
    FAULT_DETACH_THRESHOLD = 16

    def __init__(
        self,
        kernel: Kernel,
        implementation: str = "femto-containers",
        saul: SaulRegistry | None = None,
        supervisor: "SupervisorConfig | bool | None" = True,
    ) -> None:
        if implementation not in VM_CLASSES:
            raise EngineError(
                f"unknown VM implementation {implementation!r}; "
                f"choose from {sorted(VM_CLASSES)}"
            )
        self.kernel = kernel
        self.board: "Board" = kernel.board
        self.implementation = implementation
        self.saul = saul if saul is not None else SaulRegistry()
        self.helpers = build_helper_registry(self)
        self.global_store = KeyValueStore(name="global", scope="global")
        self.tenants: dict[str, Tenant] = {}
        self.hooks: dict[str, Hook] = {}
        self.hooks_by_uuid: dict[str, Hook] = {}
        self.trace_log: list[str] = []
        #: Device-lifetime fault counter: every contained fault, including
        #: faults of containers since detached or replaced.  This is the
        #: monotonic signal fleet-level canary gating reads — a container
        #: object's own ``fault_count`` dies with the container, this
        #: number survives hot-swaps and fault-detaches.
        self.fault_total: int = 0
        #: Execution context (valid while a container runs).
        self.current_container: FemtoContainer | None = None
        self.current_pdu: CoapResponseContext | None = None
        #: Crash-loop/overrun watchdog.  ``True`` wires the default
        #: policy, a :class:`~repro.vm.supervisor.SupervisorConfig`
        #: customizes it, and a falsy value restores the legacy
        #: lifetime-fault detach (no quarantine, no probation).
        self.supervisor: "ContainerSupervisor | None"
        if supervisor:
            config = supervisor if isinstance(supervisor, SupervisorConfig) \
                else None
            self.supervisor = ContainerSupervisor(self, config)
        else:
            self.supervisor = None
        self._register_default_hooks()

    # -- firmware-provided hooks ------------------------------------------------

    def _register_default_hooks(self) -> None:
        """The launchpads this firmware build ships with (§7)."""
        self.register_hook(Hook(FC_HOOK_SCHED, mode=HookMode.SYNC,
                                policy=HookPolicy(context_writable=False)))
        self.register_hook(Hook(FC_HOOK_TIMER, mode=HookMode.THREAD))
        self.register_hook(Hook(FC_HOOK_COAP, mode=HookMode.THREAD))
        self.register_hook(Hook(FC_HOOK_SENSOR_READ, mode=HookMode.THREAD))

    def register_hook(self, hook: Hook) -> Hook:
        """Compile a launchpad into the firmware (needs a firmware update
        on a real device — done at engine construction here)."""
        if hook.name in self.hooks:
            raise EngineError(f"hook {hook.name!r} already registered")
        self.hooks[hook.name] = hook
        self.hooks_by_uuid[str(hook.uuid)] = hook
        if hook.name == FC_HOOK_SCHED:
            self.kernel.scheduler.sched_hook = self._sched_launchpad
        return hook

    def hook(self, name: str) -> Hook:
        try:
            return self.hooks[name]
        except KeyError:
            raise UnknownHookError(
                f"hook {name!r} is not compiled into this firmware"
            ) from None

    def hook_by_uuid(self, uuid_str: str) -> Hook:
        try:
            return self.hooks_by_uuid[str(uuid_str)]
        except KeyError:
            raise UnknownHookError(
                f"no hook with storage-location UUID {uuid_str}"
            ) from None

    # -- tenants ---------------------------------------------------------------

    def create_tenant(self, name: str) -> Tenant:
        if name in self.tenants:
            raise EngineError(f"tenant {name!r} already exists")
        tenant = Tenant(name=name)
        self.tenants[name] = tenant
        return tenant

    # -- container lifecycle ------------------------------------------------------

    def load(
        self,
        program: Program,
        tenant: Tenant | None = None,
        contract: ContainerContract | None = None,
        name: str | None = None,
    ) -> FemtoContainer:
        """Store an application image in RAM (not yet attached)."""
        return FemtoContainer(
            name=name or program.name,
            program=program,
            tenant=tenant,
            contract=contract or ContainerContract(),
        )

    def attach(self, container: FemtoContainer, hook_name: str) -> FemtoContainer:
        """Verify ``container`` under the hook's policy and attach it.

        This is the paper's install step: pre-flight checking happens here,
        once, and its cost is charged to the virtual clock.  Attaching a
        JIT container additionally charges the §11 transpilation cost.

        The *virtual* clock always pays the full verify+install price —
        that is the device model the evaluation reports.  The *host*,
        however, resolves both through the process-wide image cache, so
        attaching the N-th instance of an already-seen image (same
        content hash, same granted limits) costs dictionary lookups
        instead of a re-verify and a re-transpile.
        """
        hook = self.hook(hook_name)
        if container.hook is not None:
            raise AttachError(
                f"container {container.name!r} is already attached to "
                f"{container.hook.name!r}"
            )
        tenant_name = container.tenant.name if container.tenant else None
        try:
            granted = grant(hook.policy_for(tenant_name), container.contract)
        except Exception as exc:
            raise AttachError(
                f"container {container.name!r} rejected: {exc}"
            ) from exc

        verifier_config = VerifierConfig(
            max_instructions=granted.max_instructions,
            allowed_helpers=(
                granted.allowed_helpers
                if granted.allowed_helpers is not None
                else self.helpers.ids()
            ),
        )
        vm_config = VMConfig(branch_limit=granted.branch_limit,
                             stack_size=granted.stack_size)
        access = AccessList()
        for region_grant in granted.memory_grants:
            access.add(MemoryRegion.zeroed(
                region_grant.name, region_grant.start, region_grant.size,
                region_grant.perms,
            ))

        runtime = container_runtime(
            getattr(container.program, "runtime", RUNTIME_DEFAULT)
        )
        try:
            vm = runtime.attach(self, container, granted, vm_config, access,
                                verifier_config)
        except Exception as exc:
            raise AttachError(
                f"container {container.name!r} rejected: {exc}"
            ) from exc

        container.vm = vm
        container.runtime = runtime
        container.granted = granted
        container.hook = hook
        container.state = ContainerState.ATTACHED
        hook.containers.append(container)
        if hook.mode is HookMode.THREAD:
            self._spawn_worker(container)
        if self.supervisor is not None:
            self.supervisor.notify_attach(container, hook.name)
        return container

    def detach(self, container: FemtoContainer) -> None:
        hook = container.hook
        if hook is None:
            return
        hook.containers.remove(container)
        container.hook = None
        container.state = ContainerState.DETACHED
        # Thread-mode containers own a worker thread: tell it to exit so a
        # detach (or hot replace) never leaks a blocked zombie thread.
        if container.event_queue is not None:
            container.event_queue.post_new("detach")  # type: ignore[attr-defined]

    def replace(self, old: FemtoContainer, new_program: Program) -> FemtoContainer:
        """Hot-swap a container's application (the SUIT update effect).

        The replacement keeps the old container's *name*: the deployed
        slot is the stable identity operators (and the declarative
        deployment reconciler) track across updates — only the image
        content changes.
        """
        if old.hook is None:
            raise AttachError("cannot replace a detached container")
        hook_name = old.hook.name
        tenant = old.tenant
        contract = old.contract
        self.detach(old)
        fresh = self.load(new_program, tenant=tenant, contract=contract,
                          name=old.name)
        try:
            return self.attach(fresh, hook_name)
        except Exception:
            # Failure-atomic: a replacement whose image is rejected must
            # not leave the slot empty — re-attach the old container
            # (re-verified, so the clock is charged like any install;
            # a real device restoring its old image pays it too).
            self.attach(old, hook_name)
            raise

    def _spawn_worker(self, container: FemtoContainer) -> None:
        """Worker thread for THREAD-mode hooks (one thread per instance)."""
        queue = self.kernel.new_event_queue(f"{container.name}-events")
        container.event_queue = queue  # type: ignore[attr-defined]

        def worker(thread):
            while True:
                event = yield Wait(queue)
                if event.kind == "detach":
                    return
                context, pdu, done = event.payload
                run = self.execute(container, context, pdu=pdu)
                if done is not None:
                    done(run)

        container.worker = self.kernel.create_thread(
            name=f"fc/{container.name}",
            body=worker,
            priority=9,
            stack_size=container.vm.config.stack_size + 512,
        )

    # -- execution ------------------------------------------------------------------

    def _sched_launchpad(self, previous_pid: int, next_pid: int) -> None:
        """Listing 1: the hook compiled into the scheduler's hot path."""
        context = struct.pack("<QQ", previous_pid, next_pid)
        self.fire_hook(FC_HOOK_SCHED, context)

    def fire_hook(
        self,
        hook_name: str,
        context: bytes = b"",
        pdu: CoapResponseContext | None = None,
        done=None,
    ) -> HookFiring:
        """Fire a launchpad: run (or wake) every attached container.

        Charges the empty-hook dispatch cost even when nothing is attached
        (the pad's existence costs ~100 ticks; Table 4).
        """
        hook = self.hook(hook_name)
        hook.fires += 1
        self.kernel.clock.charge(self.board.hook_dispatch_cycles)
        firing = HookFiring(hook=hook,
                            dispatch_cycles=self.board.hook_dispatch_cycles)
        containers = hook.containers
        if hook.mode is HookMode.SYNC:
            # Hot path (the scheduler launchpad fires on every context
            # switch): iterate the attach list in place, no per-fire
            # snapshot.  The only mutation a synchronous run can cause is
            # the fault-detach of the very container that just ran
            # (helpers cannot attach or detach), so an index walk that
            # re-checks its slot after each run is exactly as safe as a
            # copy — and allocation-free.
            runs = firing.runs
            index = 0
            while index < len(containers):
                container = containers[index]
                runs.append(self.execute(container, context, pdu=pdu))
                if index < len(containers) and containers[index] is container:
                    index += 1
                # else: the run fault-detached `container`; its removal
                # shifted the next container into this slot.
        else:
            # Posting to worker queues never mutates the attach list.
            for container in containers:
                container.event_queue.post_new(  # type: ignore[attr-defined]
                    "fire", (context, pdu, done)
                )
        return firing

    def execute(
        self,
        container: FemtoContainer,
        context: bytes = b"",
        pdu: CoapResponseContext | None = None,
    ) -> ContainerRun:
        """Run one container once, containing any fault (Fig 3 flow)."""
        vm = container.vm
        if vm is None:
            raise EngineError(f"container {container.name!r} is not attached")
        granted = container.granted
        perms = (
            Permission.READ_WRITE
            if granted is None or granted.context_writable
            else Permission.READ
        )
        # Hoisted for the hook-fire hot path: one attribute walk each,
        # and the save/restore of the execution context is two plain
        # attribute swaps (no allocation on the non-fault path — even the
        # ExecutionStats fallback is only built when a fault swallowed
        # the real one).
        board = self.board
        clock = self.kernel.clock
        previous_container = self.current_container
        previous_pdu = self.current_pdu
        self.current_container = container
        self.current_pdu = pdu
        clock.charge(board.vm_setup_cycles)
        fault: FaultRecord | None = None
        value: int | None = None
        stats: ExecutionStats | None = None
        try:
            result = vm.run(context=context if context else None,
                            context_perms=perms)
            value = result.value
            stats = result.stats
        except VMFault as exc:
            # The fault is *contained*: record it, never re-raise.
            fault = FaultRecord(
                kind=type(exc).__name__,
                message=str(exc),
                at_cycles=clock.cycles,
                pc=exc.pc,
            )
        finally:
            self.current_container = previous_container
            self.current_pdu = previous_pdu
            if pdu is not None:
                # Unmap the PDU buffer: the grant lasts one execution.
                # (AccessList.remove also invalidates its MRU region cache.)
                vm.access_list.remove(pdu.region)

        if stats is None:
            stats = ExecutionStats()
        runtime = container.runtime
        cycles = (
            runtime.execution_cycles(board, stats, self.implementation,
                                     self.helpers)
            if runtime is not None
            else board.vm_execution_cycles(stats, self.implementation,
                                           self.helpers)
        ) + board.vm_setup_cycles
        clock.charge(max(0, cycles - board.vm_setup_cycles))
        run = ContainerRun(
            container=container,
            value=value,
            stats=stats,
            cycles=cycles,
            duration_us=board.us(cycles),
            fault=fault,
        )
        container.record_run(run)
        if fault is not None:
            self.fault_total += 1
        if pdu is not None and value is not None:
            pdu.payload_length = max(
                0, min(int(value) - pdu.header_length, pdu.payload_capacity)
            )
        if self.supervisor is not None:
            self.supervisor.observe(container, run)
        elif (
            fault is not None
            and container.fault_count >= self.FAULT_DETACH_THRESHOLD
            and container.hook is not None
        ):
            # Legacy containment: detach after a lifetime fault budget,
            # no quarantine/probation (supervisor disabled).
            self.detach(container)
        return run

    # -- periodic (timer hook) convenience ----------------------------------------

    def attach_periodic(
        self,
        container: FemtoContainer,
        period_us: float,
        hook_name: str = FC_HOOK_TIMER,
    ):
        """Attach to the timer hook and fire it every ``period_us``.

        Returns a cancel function.  This is the §8.3 sensor-reader pattern:
        a timer event periodically launches the container.
        """
        if container.hook is None:
            self.attach(container, hook_name)

        def fire() -> None:
            self.fire_hook(hook_name, struct.pack("<QQ", 0, 0))

        return self.kernel.timers.set_periodic(fire, period_us)

    # -- accounting --------------------------------------------------------------------

    def containers(self) -> list[FemtoContainer]:
        seen: list[FemtoContainer] = []
        for hook in self.hooks.values():
            seen.extend(hook.containers)
        return seen

    def runtime_snapshot(self) -> dict[tuple[str, str], SlotSnapshot]:
        """Per-slot :class:`SlotSnapshot` baselines.

        Keyed by ``(hook name, container name)`` like
        :meth:`fault_counts`.  The container *object* is part of the
        snapshot on purpose: run and cycle counters live on the
        instance, so a later reader can compute deltas even for a
        container the engine fault-detached in the meantime (fleet
        canary health gates rely on exactly that).  Supervised slots
        additionally carry their live health record — including slots
        whose container is currently *quarantined* (detached), so a
        fleet health reader sees the sick slot, not a silent absence.
        """
        snapshot: dict[tuple[str, str], SlotSnapshot] = {}
        for container in self.containers():
            if container.hook is None:
                continue
            key = (container.hook.name, container.name)
            health = (self.supervisor.health(*key)
                      if self.supervisor is not None else None)
            snapshot[key] = SlotSnapshot(
                container, container.runs, container.total_cycles, health)
        if self.supervisor is not None:
            for key, health in self.supervisor.counters().items():
                if key not in snapshot and health.quarantined:
                    snapshot[key] = SlotSnapshot(
                        health.container, health.container.runs,
                        health.container.total_cycles, health)
        return snapshot

    def fault_counts(self) -> dict[tuple[str, str], int]:
        """Per-slot fault counts of currently attached containers.

        Keyed by ``(hook name, container name)`` — the planner's slot
        identity — because one container name may legally appear on
        several hooks.
        """
        return {(container.hook.name, container.name): container.fault_count
                for container in self.containers()
                if container.hook is not None}

    def store_ram_bytes(self) -> int:
        """RAM of all key-value stores plus housekeeping (§10.3's 340 B)."""
        from repro.core.tenant import TENANT_STRUCT_BYTES

        total = self.global_store.ram_bytes
        total += sum(
            TENANT_STRUCT_BYTES + t.store.ram_bytes
            for t in self.tenants.values()
        )
        total += sum(c.local_store.ram_bytes for c in self.containers())
        return total

    def total_ram_bytes(self) -> int:
        """Engine-attributable RAM: instances + images + stores (§10.3)."""
        return self.store_ram_bytes() + sum(
            c.vm.ram_bytes + c.program.image_size
            for c in self.containers()
            if c.vm is not None
        )
