"""Exceptions raised by the Femto-Container middleware layer."""

from __future__ import annotations


class EngineError(Exception):
    """Invalid hosting-engine operation (unknown hook, double attach...)."""


class AttachError(EngineError):
    """A container could not be attached (verification/policy failure)."""


class UnknownHookError(EngineError):
    """The referenced hook was not compiled into this firmware.

    Per §5, new hooks require a firmware update — the engine cannot invent
    one at runtime, so SUIT manifests naming unknown storage locations must
    be rejected.
    """
