"""The Femto-Container itself: one sandboxed application instance."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.kvstore import KeyValueStore
from repro.core.policy import ContainerContract, GrantedPolicy
from repro.vm.certfc import CertFCInterpreter
from repro.vm.interpreter import ExecutionStats, Interpreter, RbpfInterpreter
from repro.vm.jit import CompiledProgram
from repro.vm.program import Program

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.hooks import Hook
    from repro.core.tenant import Tenant
    from repro.rtos.thread import Thread

#: implementation name -> interpreter class.
VM_CLASSES = {
    "rbpf": RbpfInterpreter,
    "femto-containers": Interpreter,
    "certfc": CertFCInterpreter,
    "jit": CompiledProgram,
}


class ContainerState(enum.Enum):
    """Lifecycle of a container image on the device."""

    LOADED = "loaded"        # image in RAM, not yet verified
    ATTACHED = "attached"    # verified and bound to a hook
    DETACHED = "detached"    # removed from its hook, image still present


@dataclass
class FaultRecord:
    """One contained fault (the host keeps running — that is the point)."""

    kind: str
    message: str
    at_cycles: int
    pc: int | None = None


@dataclass
class ContainerRun:
    """Outcome of one launchpad-triggered execution."""

    container: "FemtoContainer"
    value: int | None
    stats: ExecutionStats
    cycles: int
    duration_us: float
    fault: FaultRecord | None = None

    @property
    def ok(self) -> bool:
        return self.fault is None


@dataclass
class FemtoContainer:
    """One deployable application: bytecode + contract + runtime state."""

    name: str
    program: Program
    tenant: "Tenant | None" = None
    contract: ContainerContract = field(default_factory=ContainerContract)
    state: ContainerState = ContainerState.LOADED
    #: Filled at attach time by the hosting engine.
    vm: Interpreter | None = None
    #: The :class:`~repro.runtimes.base.ContainerRuntime` that attached
    #: this container (set by the engine; ``None`` before first attach).
    runtime: object = None
    granted: GrantedPolicy | None = None
    hook: "Hook | None" = None
    local_store: KeyValueStore = field(default=None)  # type: ignore[assignment]
    #: Worker thread for HookMode.THREAD execution.
    worker: "Thread | None" = None
    #: Event queue feeding the worker thread (set by the engine).
    event_queue: object = None
    #: Lifetime accounting.
    runs: int = 0
    faults: list[FaultRecord] = field(default_factory=list)
    total_cycles: int = 0
    lifetime_stats: ExecutionStats = field(default_factory=ExecutionStats)

    def __post_init__(self) -> None:
        if self.local_store is None:
            self.local_store = KeyValueStore(
                name=f"{self.name}-local", scope="local"
            )
        if self.tenant is not None:
            self.tenant.adopt(self)

    # -- accounting -----------------------------------------------------------

    @property
    def ram_bytes(self) -> int:
        """RAM this instance pins: VM state + image (stored in RAM after a
        network deployment, per §5) + its local store."""
        vm_bytes = self.vm.ram_bytes if self.vm is not None else 0
        return vm_bytes + self.program.image_size + self.local_store.ram_bytes

    @property
    def fault_count(self) -> int:
        return len(self.faults)

    @property
    def image_hash(self) -> str:
        """Content hash of the deployed image (the shared-cache key).

        Instances with equal hashes share verify results and JIT
        templates through :data:`~repro.vm.imagecache.IMAGE_CACHE`; the
        device shell and the fan-out tooling display it so operators can
        see which containers are stamped from the same image.
        """
        return self.program.image_hash

    def record_run(self, run: ContainerRun) -> None:
        self.runs += 1
        self.total_cycles += run.cycles
        self.lifetime_stats.merge(run.stats)
        if run.fault is not None:
            self.faults.append(run.fault)

    def __hash__(self) -> int:
        return id(self)
