"""Persistent non-volatile memory (flash) model for one device.

The paper's SUIT update workflow (§6) is designed for hostile field
conditions: power can fail at any instant, and everything that matters
across a reboot — installed images, the anti-rollback sequence state, a
half-fetched payload — must live in flash, not RAM.  This module models
that flash as a small key/value blob store:

* an :class:`NvmStore` **survives reboot**: the kernel, its threads and
  every RAM structure are dropped by :meth:`~repro.rtos.kernel.Kernel
  .power_fail`, but the store object is owned by the *device*, not the
  kernel, and is re-bound to the fresh kernel on boot;
* every write charges modelled **erase + program cycles** on the bound
  kernel's virtual clock (flash pages must be erased before they are
  re-programmed), so crash-safe persistence has a measurable CPU/energy
  cost exactly like on real silicon;
* wear is observable: :attr:`NvmStore.erases`, :attr:`NvmStore.writes`
  and :attr:`NvmStore.bytes_written` count lifetime flash traffic, the
  quantity an OTA design must minimize.

Writes are modelled as **atomic at record granularity** (the classic
two-slot/journal scheme real SUIT bootloaders use): a power failure
leaves either the old record or the new one, never a torn mix.  The
chaos tests rely on that contract — they kill the device *between*
pipeline steps, and the store must never present half-written state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rtos.kernel import Kernel

#: Flash page size (bytes) — nRF52840-class internal flash.
NVM_PAGE_BYTES = 4096
#: Cycles to erase one page before re-programming (≈1.3 ms @ 64 MHz;
#: real nRF52 page erase is ~2-90 ms, this models the typical case).
NVM_ERASE_CYCLES_PER_PAGE = 85_000
#: Cycles to program one byte (word-programming amortized).
NVM_WRITE_CYCLES_PER_BYTE = 40
#: Cycles to read one byte (memory-mapped flash reads are cheap but the
#: GD32V-class uncached parts are not free).
NVM_READ_CYCLES_PER_BYTE = 2


class NvmStore:
    """One device's non-volatile key/value flash region.

    Keys are path-like strings (``"suit/slot/<location>"``); values are
    opaque byte blobs.  The store holds a reference to the kernel whose
    virtual clock pays for flash traffic; :meth:`bind` moves that
    reference to the next kernel after a reboot — the *data* needs no
    migration because flash keeps it.
    """

    def __init__(
        self,
        kernel: "Kernel | None" = None,
        page_bytes: int = NVM_PAGE_BYTES,
        erase_cycles_per_page: int = NVM_ERASE_CYCLES_PER_PAGE,
        write_cycles_per_byte: int = NVM_WRITE_CYCLES_PER_BYTE,
        read_cycles_per_byte: int = NVM_READ_CYCLES_PER_BYTE,
    ) -> None:
        self.kernel = kernel
        self.page_bytes = page_bytes
        self.erase_cycles_per_page = erase_cycles_per_page
        self.write_cycles_per_byte = write_cycles_per_byte
        self.read_cycles_per_byte = read_cycles_per_byte
        self._records: dict[str, bytes] = {}
        #: Lifetime wear counters.
        self.erases = 0
        self.writes = 0
        self.reads = 0
        self.bytes_written = 0

    # -- reboot plumbing ---------------------------------------------------

    def bind(self, kernel: "Kernel") -> "NvmStore":
        """Point flash-cost charging at the (new) kernel's clock."""
        self.kernel = kernel
        return self

    def _charge(self, cycles: int) -> None:
        if self.kernel is not None and cycles:
            self.kernel.clock.charge(cycles)

    # -- the blob store ----------------------------------------------------

    def write(self, key: str, value: bytes) -> None:
        """Atomically (re)write one record, paying erase + program."""
        value = bytes(value)
        pages = max(1, -(-len(value) // self.page_bytes))
        self._charge(pages * self.erase_cycles_per_page
                     + len(value) * self.write_cycles_per_byte)
        self.erases += pages
        self.writes += 1
        self.bytes_written += len(value)
        self._records[key] = value

    def read(self, key: str) -> bytes | None:
        value = self._records.get(key)
        if value is not None:
            self._charge(len(value) * self.read_cycles_per_byte)
            self.reads += 1
        return value

    def delete(self, key: str) -> None:
        """Drop one record (a single cheap erase of its journal entry)."""
        if self._records.pop(key, None) is not None:
            self._charge(self.erase_cycles_per_page)
            self.erases += 1

    def keys(self, prefix: str = "") -> list[str]:
        return sorted(key for key in self._records if key.startswith(prefix))

    def items(self, prefix: str = "") -> Iterator[tuple[str, bytes]]:
        for key in self.keys(prefix):
            yield key, self._records[key]

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    @property
    def used_bytes(self) -> int:
        """Flash currently occupied by live records."""
        return sum(len(value) for value in self._records.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"NvmStore({len(self._records)} records, "
                f"{self.used_bytes} B, {self.erases} erases)")
