"""Persistent non-volatile memory (flash) model for one device.

The paper's SUIT update workflow (§6) is designed for hostile field
conditions: power can fail at any instant, and everything that matters
across a reboot — installed images, the anti-rollback sequence state, a
half-fetched payload — must live in flash, not RAM.  This module models
that flash as a small key/value blob store:

* an :class:`NvmStore` **survives reboot**: the kernel, its threads and
  every RAM structure are dropped by :meth:`~repro.rtos.kernel.Kernel
  .power_fail`, but the store object is owned by the *device*, not the
  kernel, and is re-bound to the fresh kernel on boot;
* every write charges modelled **erase + program cycles** on the bound
  kernel's virtual clock (flash pages must be erased before they are
  re-programmed), so crash-safe persistence has a measurable CPU/energy
  cost exactly like on real silicon;
* wear is observable: :attr:`NvmStore.erases`, :attr:`NvmStore.writes`
  and :attr:`NvmStore.bytes_written` count lifetime flash traffic, the
  quantity an OTA design must minimize.

Unlike the PR 6 model, writes are **not** assumed atomic and bits are
**not** assumed immortal — real nRF52-class flash guarantees neither.
Every record is stored as a CRC32-framed journal entry
(``magic | length | crc32 | payload``) and committed through a
**two-phase shadow scheme**:

1. program the new frame into the record's *shadow* region;
2. program it into the *primary* region;
3. read back and, for ordinary records, retire the shadow.

A power failure during phase 1 tears the shadow — the primary still
holds the *old* value.  A failure during phase 2 tears the primary —
:meth:`read` detects the bad CRC and repairs the primary from the
intact shadow.  Either way the store presents the old value or the new
value, never garbage.  Records written with ``redundant=True`` (the
anti-rollback sequence state) keep their shadow as a standing replica,
so even a later *bit flip* in the primary is repaired instead of lost.

Fault hooks for the chaos layer: :meth:`tear_next_write` arms a
one-shot torn write (at the shadow or the commit phase),
:meth:`bit_flip` corrupts a stored frame in place, and
:attr:`erase_budget` models wear-out — a region whose lifetime erase
count exceeds the budget goes bad and silently corrupts whatever is
programmed into it.
"""

from __future__ import annotations

import struct
import zlib
from typing import TYPE_CHECKING, Iterator

from repro.rtos.errors import PowerFailure

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rtos.kernel import Kernel

#: Flash page size (bytes) — nRF52840-class internal flash.
NVM_PAGE_BYTES = 4096
#: Cycles to erase one page before re-programming (≈1.3 ms @ 64 MHz;
#: real nRF52 page erase is ~2-90 ms, this models the typical case).
NVM_ERASE_CYCLES_PER_PAGE = 85_000
#: Cycles to program one byte (word-programming amortized).
NVM_WRITE_CYCLES_PER_BYTE = 40
#: Cycles to read one byte (memory-mapped flash reads are cheap but the
#: GD32V-class uncached parts are not free).
NVM_READ_CYCLES_PER_BYTE = 2
#: Cycles to CRC one byte (software crc32 on a Cortex-M class core).
NVM_CRC_CYCLES_PER_BYTE = 6

#: Journal frame: magic(2) | payload length(4) | crc32(payload)(4).
NVM_FRAME_MAGIC = b"\xf7\xc0"
NVM_FRAME_HEADER = struct.Struct("<4xII")
NVM_FRAME_HEADER_BYTES = 2 + 8


def _frame(payload: bytes) -> bytes:
    return (NVM_FRAME_MAGIC
            + struct.pack("<II", len(payload), zlib.crc32(payload))
            + payload)


def _unframe(frame: bytes | None) -> bytes | None:
    """The frame's payload, or ``None`` for a torn/corrupt/absent frame."""
    if frame is None or len(frame) < NVM_FRAME_HEADER_BYTES:
        return None
    if frame[:2] != NVM_FRAME_MAGIC:
        return None
    length, crc = struct.unpack_from("<II", frame, 2)
    payload = frame[NVM_FRAME_HEADER_BYTES:]
    if len(payload) != length or zlib.crc32(payload) != crc:
        return None
    return payload


class TornWrite(PowerFailure):
    """Raised by an armed torn write after corrupting the in-flight frame.

    Subclasses :class:`~repro.rtos.errors.PowerFailure` so the kernel's
    step loop treats it as the power loss it models — the device halts
    at this exact virtual instant, mid-commit.
    """


class NvmStore:
    """One device's non-volatile key/value flash region.

    Keys are path-like strings (``"suit/slot/<location>"``); values are
    opaque byte blobs.  The store holds a reference to the kernel whose
    virtual clock pays for flash traffic; :meth:`bind` moves that
    reference to the next kernel after a reboot — the *data* needs no
    migration because flash keeps it.
    """

    def __init__(
        self,
        kernel: "Kernel | None" = None,
        page_bytes: int = NVM_PAGE_BYTES,
        erase_cycles_per_page: int = NVM_ERASE_CYCLES_PER_PAGE,
        write_cycles_per_byte: int = NVM_WRITE_CYCLES_PER_BYTE,
        read_cycles_per_byte: int = NVM_READ_CYCLES_PER_BYTE,
        crc_cycles_per_byte: int = NVM_CRC_CYCLES_PER_BYTE,
    ) -> None:
        self.kernel = kernel
        self.page_bytes = page_bytes
        self.erase_cycles_per_page = erase_cycles_per_page
        self.write_cycles_per_byte = write_cycles_per_byte
        self.read_cycles_per_byte = read_cycles_per_byte
        self.crc_cycles_per_byte = crc_cycles_per_byte
        #: Committed journal frames (the record's primary region).
        self._primary: dict[str, bytes] = {}
        #: In-flight commits and standing replicas of redundant records.
        self._shadow: dict[str, bytes] = {}
        #: Which keys asked for a standing replica (``redundant=True``).
        self._redundant: set[str] = set()
        #: Lifetime wear counters.
        self.erases = 0
        self.writes = 0
        self.reads = 0
        self.bytes_written = 0
        #: Corruption bookkeeping.
        self.torn = 0
        self.bitflips = 0
        self.repairs = 0
        self.lost = 0
        self.worn_writes = 0
        #: Wear-out model: a region (one key's primary or shadow copy)
        #: whose lifetime erase count exceeds this budget goes bad —
        #: anything programmed into it comes back corrupt.  ``None``
        #: disables wear-out (the default: healthy silicon).
        self.erase_budget: int | None = None
        self._region_erases: dict[tuple[str, str], int] = {}
        self._worn: set[tuple[str, str]] = set()
        #: One-shot armed tear: ``(phase, key-substring)`` or ``None``.
        self._tear: tuple[str, str] | None = None

    # -- reboot plumbing ---------------------------------------------------

    def bind(self, kernel: "Kernel") -> "NvmStore":
        """Point flash-cost charging at the (new) kernel's clock."""
        self.kernel = kernel
        return self

    def _charge(self, cycles: int) -> None:
        if self.kernel is not None and cycles:
            self.kernel.clock.charge(cycles)

    # -- chaos hooks -------------------------------------------------------

    def tear_next_write(self, phase: str = "commit",
                        match: str = "") -> None:
        """Arm a one-shot torn write (power fails mid-program).

        ``phase`` is ``"shadow"`` (tear during phase 1: the primary
        keeps the old value) or ``"commit"`` (tear during phase 2: the
        shadow holds the new value and repairs the primary on the next
        read).  ``match`` restricts the tear to the first write whose
        key contains it.
        """
        if phase not in ("shadow", "commit"):
            raise ValueError(f"unknown tear phase {phase!r}")
        self._tear = (phase, match)

    @property
    def tear_armed(self) -> bool:
        return self._tear is not None

    def bit_flip(self, key: str) -> bool:
        """Flip one bit in ``key``'s stored primary frame (radiation,
        marginal cell).  Falls back to the shadow copy when no primary
        exists.  Returns whether anything was corrupted."""
        for region in (self._primary, self._shadow):
            frame = region.get(key)
            if frame:
                at = len(frame) // 2
                region[key] = (frame[:at]
                               + bytes([frame[at] ^ 0x40])
                               + frame[at + 1:])
                self.bitflips += 1
                return True
        return False

    # -- wear-out model ----------------------------------------------------

    def _erase_region(self, region: str, key: str, pages: int) -> None:
        self._charge(pages * self.erase_cycles_per_page)
        self.erases += pages
        spot = (region, key)
        count = self._region_erases.get(spot, 0) + pages
        self._region_erases[spot] = count
        if self.erase_budget is None:
            return
        # The shadow area draws from the journal's spare pool (an FTL
        # retires bad blocks into reserve), so it outlives the data
        # region — which is what lets a worn primary keep being served.
        budget = self.erase_budget * (2 if region == "shadow" else 1)
        if count > budget:
            self._worn.add(spot)

    def _program(self, region: str, key: str, frame: bytes) -> bytes:
        """Erase + program one region; a worn region corrupts the frame."""
        pages = max(1, -(-len(frame) // self.page_bytes))
        self._erase_region(region, key, pages)
        self._charge(len(frame) * self.write_cycles_per_byte)
        self.bytes_written += len(frame)
        if (region, key) in self._worn:
            # A cell past its erase budget reads back wrong: flip the
            # last payload byte so the CRC catches it.
            frame = frame[:-1] + bytes([frame[-1] ^ 0xFF])
            self.worn_writes += 1
        store = self._primary if region == "primary" else self._shadow
        store[key] = frame
        return frame

    def _maybe_tear(self, phase: str, key: str, frame: bytes) -> None:
        """Fire an armed tear: leave a half-programmed frame and halt."""
        if self._tear is None:
            return
        armed_phase, match = self._tear
        if armed_phase != phase or match not in key:
            return
        self._tear = None
        self.torn += 1
        region = "primary" if phase == "commit" else "shadow"
        store = self._primary if phase == "commit" else self._shadow
        torn_frame = frame[: max(1, len(frame) // 2)]
        # The torn program still wore the page and burned the cycles of
        # the bytes that made it in before power died.
        pages = max(1, -(-len(frame) // self.page_bytes))
        self._erase_region(region, key, pages)
        self._charge(len(torn_frame) * self.write_cycles_per_byte)
        self.bytes_written += len(torn_frame)
        store[key] = torn_frame
        raise TornWrite(f"power failed mid-{phase} of {key!r}")

    # -- the blob store ----------------------------------------------------

    def write(self, key: str, value: bytes, redundant: bool = False) -> None:
        """Two-phase shadow-commit one record.

        ``redundant=True`` keeps the shadow copy as a standing replica
        after the commit (anti-rollback state wants two copies);
        ordinary records retire the shadow with one cheap erase.
        """
        value = bytes(value)
        self._charge(len(value) * self.crc_cycles_per_byte)
        frame = _frame(value)
        # Phase 1: program the shadow region.
        self._maybe_tear("shadow", key, frame)
        self._program("shadow", key, frame)
        # Phase 2: program the primary region.
        self._maybe_tear("commit", key, frame)
        written = self._program("primary", key, frame)
        # Read-back verify (every SUIT bootloader does).
        self._charge(len(written) * self.read_cycles_per_byte)
        self.writes += 1
        if redundant:
            self._redundant.add(key)
        elif _unframe(written) is not None:
            # Healthy commit: retire the shadow journal entry.
            self._shadow.pop(key, None)
            self._charge(self.erase_cycles_per_page)
            self.erases += 1
            self._redundant.discard(key)
        # else: the primary region is worn — keep the shadow so the
        # next read can serve (and the caller's data survives).

    def read(self, key: str) -> bytes | None:
        """Validated read: repair from shadow on a corrupt primary.

        Returns the payload, or ``None`` when the record is absent or
        both copies are corrupt (the record is then dropped — a real
        driver garbage-collects unreadable journal entries).
        """
        primary = self._primary.get(key)
        payload = _unframe(primary)
        if payload is not None:
            self._charge(len(primary) * self.read_cycles_per_byte)
            self.reads += 1
            return payload
        shadow = self._shadow.get(key)
        shadow_payload = _unframe(shadow)
        if shadow_payload is not None:
            self._charge(len(shadow) * self.read_cycles_per_byte)
            self.reads += 1
            # Torn/corrupt (or missing) primary with an intact shadow:
            # re-commit the journal entry — unless the primary region
            # is worn out, in which case the shadow keeps serving.
            if ("primary", key) not in self._worn:
                self._program("primary", key, shadow)
                self._charge(len(shadow) * self.read_cycles_per_byte)
                self.repairs += 1
                if key not in self._redundant:
                    self._shadow.pop(key, None)
                    self._charge(self.erase_cycles_per_page)
                    self.erases += 1
            return shadow_payload
        if primary is not None or shadow is not None:
            # Both copies corrupt: the record is unrecoverable.
            self._primary.pop(key, None)
            self._shadow.pop(key, None)
            self._redundant.discard(key)
            self.lost += 1
        return None

    def delete(self, key: str) -> None:
        """Drop one record (a single cheap erase of its journal entry).

        Idempotent: deleting a key that was never written — or was
        already garbage-collected before a reboot — is a no-op.
        """
        found = self._primary.pop(key, None) is not None
        found = (self._shadow.pop(key, None) is not None) or found
        self._redundant.discard(key)
        if found:
            self._charge(self.erase_cycles_per_page)
            self.erases += 1

    def keys(self, prefix: str = "") -> list[str]:
        live = set(self._primary) | set(self._shadow)
        return sorted(key for key in live if key.startswith(prefix))

    def items(self, prefix: str = "") -> Iterator[tuple[str, bytes]]:
        """Live ``(key, payload)`` pairs; corrupt records are skipped
        (not repaired — iteration must not mutate)."""
        for key in self.keys(prefix):
            payload = _unframe(self._primary.get(key))
            if payload is None:
                payload = _unframe(self._shadow.get(key))
            if payload is not None:
                yield key, payload

    def __contains__(self, key: str) -> bool:
        return key in self._primary or key in self._shadow

    def __len__(self) -> int:
        return len(set(self._primary) | set(self._shadow))

    @property
    def used_bytes(self) -> int:
        """Flash currently occupied by live record payloads."""
        return sum(len(payload) for _, payload in self.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"NvmStore({len(self)} records, "
                f"{self.used_bytes} B, {self.erases} erases)")
