"""Virtual cycle-accurate clock.

All timing in the reproduction is *virtual*: the clock counts CPU cycles,
and everything that consumes time (instruction execution, context switches,
hook dispatch, helper calls, radio latency) charges cycles here.  Converting
to microseconds uses the board's CPU frequency (all three evaluation boards
run at 64 MHz, Appendix A).
"""

from __future__ import annotations


class Clock:
    """Monotonic virtual clock measured in CPU cycles."""

    def __init__(self, mhz: int = 64):
        if mhz <= 0:
            raise ValueError("CPU frequency must be positive")
        self.mhz = mhz
        self._cycles = 0

    @property
    def cycles(self) -> int:
        return self._cycles

    @property
    def time_us(self) -> float:
        """Elapsed virtual time in microseconds."""
        return self._cycles / self.mhz

    @property
    def time_ms(self) -> float:
        return self._cycles / (self.mhz * 1000.0)

    def charge(self, cycles: int) -> None:
        """Consume ``cycles`` of CPU time."""
        if cycles < 0:
            raise ValueError("cannot charge negative cycles")
        self._cycles += cycles

    def charge_us(self, us: float) -> None:
        self.charge(round(us * self.mhz))

    def advance_to(self, cycles: int) -> None:
        """Jump forward to an absolute cycle count (idle sleep)."""
        if cycles < self._cycles:
            raise ValueError(
                f"clock cannot move backwards ({cycles} < {self._cycles})"
            )
        self._cycles = cycles

    def us_to_cycles(self, us: float) -> int:
        return round(us * self.mhz)

    def cycles_to_us(self, cycles: int) -> float:
        return cycles / self.mhz

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock({self._cycles} cycles, {self.time_us:.1f} us)"
