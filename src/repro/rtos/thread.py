"""Threads as generator coroutines, RIOT style.

A thread body is a generator function taking the :class:`Thread` object and
yielding *syscalls* — small request objects the kernel interprets::

    def worker(thread):
        while True:
            event = yield Wait(queue)       # block on an event queue
            thread.charge(1200)             # model 1200 cycles of work
            yield Sleep(10_000)             # sleep 10 ms

The kernel resumes the generator with the syscall's result (the event for
``Wait``, ``None`` otherwise).  RIOT semantics are preserved where the paper
relies on them: strict priority scheduling, pids starting at 1 with pid 0
meaning "no thread" (Listing 2 checks ``ctx->next != 0``), and per-thread
stack accounting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Generator, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rtos.events import EventQueue
    from repro.rtos.kernel import Kernel

#: Pid value meaning "no thread" (KERNEL_PID_UNDEF in RIOT).
PID_UNDEF = 0

#: RIOT-like default stack for a simple thread (bytes).
DEFAULT_STACK_SIZE = 1024


class ThreadState(enum.Enum):
    """Lifecycle states, mirroring RIOT's STATUS_* values."""

    READY = "ready"
    RUNNING = "running"
    SLEEPING = "sleeping"
    BLOCKED = "blocked"
    ENDED = "ended"


# -- syscalls ---------------------------------------------------------------


@dataclass(frozen=True)
class Sleep:
    """Block for a duration of virtual microseconds."""

    duration_us: float


@dataclass(frozen=True)
class Wait:
    """Block until an event is posted to ``queue``."""

    queue: "EventQueue"


@dataclass(frozen=True)
class YieldCPU:
    """Give up the CPU; stay ready (round-robin within the priority)."""


@dataclass(frozen=True)
class Exit:
    """Terminate the thread."""


Syscall = Sleep | Wait | YieldCPU | Exit
ThreadBody = Callable[["Thread"], Generator[Syscall, object, None]]


@dataclass
class Thread:
    """One RTOS thread."""

    kernel: "Kernel"
    pid: int
    name: str
    priority: int
    body: ThreadBody | None
    stack_size: int = DEFAULT_STACK_SIZE
    state: ThreadState = ThreadState.READY
    #: Number of times the scheduler switched this thread in — the ground
    #: truth the Listing 2 thread-counter container is checked against.
    activations: int = 0
    #: Cycle timestamp when a sleep expires (valid in SLEEPING state).
    wake_at_cycles: int = 0
    _gen: Iterator | None = field(default=None, repr=False)
    _send_value: object = field(default=None, repr=False)

    def start(self) -> None:
        if self.body is not None and self._gen is None:
            self._gen = self.body(self)

    @property
    def alive(self) -> bool:
        return self.state is not ThreadState.ENDED

    def charge(self, cycles: int) -> None:
        """Model CPU work done by this thread (advances the global clock)."""
        self.kernel.clock.charge(cycles)

    def charge_us(self, us: float) -> None:
        self.kernel.clock.charge_us(us)

    def resume(self) -> Syscall | None:
        """Advance the generator to its next syscall (kernel use only)."""
        if self._gen is None:
            self.start()
        if self._gen is None:  # bodyless thread (idle)
            return None
        value, self._send_value = self._send_value, None
        try:
            return self._gen.send(value)
        except StopIteration:
            self.state = ThreadState.ENDED
            return Exit()

    def deliver(self, value: object) -> None:
        """Set the value the next ``resume`` sends into the generator."""
        self._send_value = value

    def __hash__(self) -> int:
        return self.pid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Thread(pid={self.pid}, name={self.name!r}, {self.state.value})"
