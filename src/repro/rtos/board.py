"""Board models for the three evaluation platforms (paper Appendix A).

All timing in the reproduction derives from these per-platform cost tables.
Each table maps an instruction cost class (:class:`repro.vm.isa.InstructionKind`)
to CPU cycles, per VM implementation ("rbpf", "femto-containers", "certfc",
"jit"), plus costs for helper system calls, hook dispatch and context
switches.

Calibration policy (see DESIGN.md §3): the Cortex-M4 constants are tuned
once against the paper's *textual* anchors — Table 4 hook overheads (109
empty / 1750 with thread-counter app), the ~27 µs thread-switch impact,
Table 2's fletcher32 run time scale, Fig 8's per-instruction ordering
(rBPF ≈ Femto-Containers << CertFC, memory ops costlier than ALU).  The
ESP32 and RISC-V tables are set from their Table 4 anchors (83/1163 and
106/754 ticks) and plausible microarchitectural differences (the GD32V's
slow uncached flash makes loads relatively expensive, while its simple
in-order ALU path is cheap).  Everything downstream — who wins, crossover
points, totals — *emerges* from executing real workloads against these
tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

from repro.vm.helpers import HelperRegistry
from repro.vm.interpreter import ExecutionStats

#: The VM implementations the evaluation compares (paper §10).
IMPLEMENTATIONS = ("rbpf", "femto-containers", "certfc", "jit")


@dataclass(frozen=True)
class VMCostTable:
    """Cycle costs of one VM implementation on one platform."""

    #: Decode + computed-jumptable dispatch, charged per executed instruction.
    dispatch: int
    #: InstructionKind -> extra cycles on top of dispatch.
    op_cycles: Mapping[str, int]
    #: Extra cycles per helper call (marshalling), on top of the syscall cost.
    call_extra: int

    def instruction_cycles(self, kind: str) -> int:
        return self.dispatch + self.op_cycles[kind]


@dataclass(frozen=True)
class Board:
    """One microcontroller platform model."""

    name: str
    cpu: str
    arch: str
    mhz: int
    flash_kib: int
    ram_kib: int
    #: Plain RTOS context-switch cost (save/restore, queue ops).
    context_switch_cycles: int
    #: Cost of an *empty* launchpad (Table 4 "Empty Hook", clock ticks).
    hook_dispatch_cycles: int
    #: implementation name -> cost table.
    vm_costs: Mapping[str, VMCostTable]
    #: helper cost key -> cycles spent inside the RTOS service.
    syscall_cycles: Mapping[str, int]
    #: Active-mode current draw at 3.3 V (energy model), mA.
    active_ma: float
    #: Sleep-mode current draw, µA.
    sleep_ua: float
    #: Relative code density vs Cortex-M4 Thumb-2 (ROM footprint model).
    code_size_factor: float
    #: Cycles per "native instruction" for natively-compiled logic.
    native_cpi: float = 1.3
    #: Per-execution VM setup (registers, stack pointer) — Table 2's rBPF
    #: cold start of ~1 µs on Cortex-M4.
    vm_setup_cycles: int = 64
    #: Pre-flight checker cost per instruction slot, paid once at load.
    verify_cycles_per_slot: int = 9
    #: §11 transpiler cost per slot, paid once at install.
    jit_install_cycles_per_slot: int = 220
    #: Cold-boot cost after a reset or power failure (ROM boot, clock
    #: setup, RTOS init — ~30 ms at 64 MHz), charged by whoever rebuilds
    #: the device around a fresh kernel.
    reboot_cycles: int = 1_920_000
    #: Internal-flash page size for the NVM model (bytes).
    nvm_page_bytes: int = 4096
    #: Cycles to erase one NVM page before re-programming.
    nvm_erase_cycles_per_page: int = 85_000
    #: Cycles to program one NVM byte.
    nvm_write_cycles_per_byte: int = 40

    # -- conversions -------------------------------------------------------

    def us(self, cycles: int | float) -> float:
        """Convert cycles to microseconds at this board's clock."""
        return cycles / self.mhz

    def cycles(self, us: float) -> int:
        return round(us * self.mhz)

    # -- VM execution costing ------------------------------------------------

    def cost_table(self, implementation: str) -> VMCostTable:
        try:
            return self.vm_costs[implementation]
        except KeyError:
            raise KeyError(
                f"board {self.name!r} has no cost table for VM "
                f"implementation {implementation!r}"
            ) from None

    def vm_execution_cycles(
        self,
        stats: ExecutionStats,
        implementation: str,
        helpers: HelperRegistry | None = None,
    ) -> int:
        """Translate an execution's instruction counts into cycles."""
        table = self.cost_table(implementation)
        cycles = stats.executed * table.dispatch
        for kind, count in stats.kind_counts.items():
            if count:
                cycles += count * table.op_cycles[kind]
        for helper_id, count in stats.helper_calls.items():
            cycles += count * table.call_extra
            cost_key = "trace"
            if helpers is not None and helper_id in helpers:
                cost_key = helpers.cost_key(helper_id)
            cycles += count * self.syscall_cycles.get(cost_key, 100)
        return cycles

    def vm_execution_us(
        self,
        stats: ExecutionStats,
        implementation: str,
        helpers: HelperRegistry | None = None,
    ) -> float:
        return self.us(self.vm_execution_cycles(stats, implementation, helpers))

    def native_cycles(self, instruction_estimate: int) -> int:
        """Cost of natively-compiled logic (Table 2 "Native C" model)."""
        return round(instruction_estimate * self.native_cpi)

    def nvm(self, kernel=None):
        """A fresh :class:`~repro.rtos.nvm.NvmStore` with this board's
        flash geometry and erase/program cost model."""
        from repro.rtos.nvm import NvmStore

        return NvmStore(
            kernel,
            page_bytes=self.nvm_page_bytes,
            erase_cycles_per_page=self.nvm_erase_cycles_per_page,
            write_cycles_per_byte=self.nvm_write_cycles_per_byte,
        )

    # -- energy model -----------------------------------------------------------

    def active_energy_uj(self, cycles: int) -> float:
        """Energy burned executing for ``cycles`` in active mode (µJ)."""
        seconds = cycles / (self.mhz * 1e6)
        return seconds * (self.active_ma * 1e-3) * 3.3 * 1e6

    def sleep_energy_uj(self, duration_us: float) -> float:
        return duration_us * 1e-6 * (self.sleep_ua * 1e-6) * 3.3 * 1e6


def _table(dispatch: int, alu: int, mul: int, div: int, load: int, store: int,
           branch: int, call: int, exit_: int, lddw: int,
           call_extra: int) -> VMCostTable:
    return VMCostTable(
        dispatch=dispatch,
        op_cycles=MappingProxyType({
            "alu": alu,
            "alu_mul": mul,
            "alu_div": div,
            "load": load,
            "store": store,
            "branch": branch,
            "call": call,
            "exit": exit_,
            "lddw": lddw,
        }),
        call_extra=call_extra,
    )


def nrf52840() -> Board:
    """Nordic nRF52840 DK: Arm Cortex-M4 @ 64 MHz, 256 KiB RAM, 1 MiB flash."""
    return Board(
        name="nrf52840",
        cpu="Arm Cortex-M4",
        arch="cortex-m4",
        mhz=64,
        flash_kib=1024,
        ram_kib=256,
        context_switch_cycles=240,
        hook_dispatch_cycles=109,          # Table 4, empty hook
        vm_costs=MappingProxyType({
            # Optimized C interpreter: computed jumptable, Thumb-2.
            "rbpf": _table(dispatch=37, alu=18, mul=26, div=44, load=42,
                           store=42, branch=22, call=30, exit_=18, lddw=36,
                           call_extra=26),
            # The Femto-Container extensions add one indirection on the
            # hot path ("minimal overhead", Fig 8).
            "femto-containers": _table(dispatch=38, alu=18, mul=26, div=44,
                                       load=42, store=42, branch=22, call=30,
                                       exit_=18, lddw=36, call_extra=26),
            # Coq-extracted defensive build: every access re-checked.
            "certfc": _table(dispatch=60, alu=40, mul=56, div=95, load=110,
                             store=110, branch=46, call=64, exit_=36,
                             lddw=80, call_extra=42),
            # §11 install-time transpilation: dispatch is native.
            "jit": _table(dispatch=2, alu=2, mul=4, div=14, load=24,
                          store=24, branch=3, call=28, exit_=2, lddw=3,
                          call_extra=26),
        }),
        syscall_cycles=MappingProxyType({
            "kv": 260, "saul": 160, "coap": 430, "fmt": 240, "time": 70,
            "trace": 120, "mem": 90,
        }),
        active_ma=6.4,
        sleep_ua=2.6,
        code_size_factor=1.00,
        native_cpi=1.03,
        vm_setup_cycles=64,
    )


def esp32_wroom32() -> Board:
    """ESP32 WROOM-32: Xtensa LX6 @ 64 MHz (per Appendix A), 520 KiB RAM."""
    return Board(
        name="esp32-wroom-32",
        cpu="Espressif ESP32 (Xtensa LX6)",
        arch="xtensa-lx6",
        mhz=64,
        flash_kib=448,
        ram_kib=520,
        context_switch_cycles=300,
        hook_dispatch_cycles=83,           # Table 4, empty hook
        vm_costs=MappingProxyType({
            "rbpf": _table(dispatch=25, alu=12, mul=18, div=30, load=36,
                           store=36, branch=14, call=20, exit_=12, lddw=28,
                           call_extra=18),
            "femto-containers": _table(dispatch=26, alu=12, mul=18, div=30,
                                       load=36, store=36, branch=14, call=20,
                                       exit_=12, lddw=28, call_extra=18),
            "certfc": _table(dispatch=42, alu=26, mul=38, div=64, load=80,
                             store=80, branch=30, call=44, exit_=26,
                             lddw=56, call_extra=28),
            "jit": _table(dispatch=2, alu=2, mul=3, div=10, load=18,
                          store=18, branch=2, call=20, exit_=2, lddw=3,
                          call_extra=18),
        }),
        syscall_cycles=MappingProxyType({
            "kv": 130, "saul": 110, "coap": 260, "fmt": 150, "time": 50,
            "trace": 90, "mem": 70,
        }),
        active_ma=40.0,
        sleep_ua=10.0,
        code_size_factor=1.42,             # Xtensa code is larger
        native_cpi=1.15,
        vm_setup_cycles=56,
    )


def gd32vf103() -> Board:
    """Sipeed Longan Nano: GD32VF103 RV32IMAC @ 64 MHz (per Appendix A).

    The Bumblebee core has a cheap in-order ALU path but *uncached, slow
    flash*, which penalises the load-heavy memory path — this is why the
    board wins Table 4's syscall-heavy thread-counter (754 ticks) yet is
    not proportionally faster on load-dominated code.
    """
    return Board(
        name="gd32vf103",
        cpu="GigaDevice GD32VF103 (RISC-V RV32IMAC)",
        arch="rv32imac",
        mhz=64,
        flash_kib=128,
        ram_kib=32,
        context_switch_cycles=200,
        hook_dispatch_cycles=106,          # Table 4, empty hook
        vm_costs=MappingProxyType({
            "rbpf": _table(dispatch=15, alu=8, mul=14, div=26, load=45,
                           store=40, branch=10, call=12, exit_=8, lddw=30,
                           call_extra=10),
            "femto-containers": _table(dispatch=16, alu=8, mul=14, div=26,
                                       load=45, store=40, branch=10, call=12,
                                       exit_=8, lddw=30, call_extra=10),
            "certfc": _table(dispatch=30, alu=18, mul=26, div=48, load=95,
                             store=85, branch=22, call=28, exit_=18,
                             lddw=60, call_extra=18),
            "jit": _table(dispatch=2, alu=1, mul=2, div=9, load=26,
                          store=22, branch=2, call=10, exit_=1, lddw=3,
                          call_extra=10),
        }),
        syscall_cycles=MappingProxyType({
            "kv": 30, "saul": 60, "coap": 120, "fmt": 80, "time": 30,
            "trace": 50, "mem": 40,
        }),
        active_ma=14.0,
        sleep_ua=5.0,
        code_size_factor=0.90,             # RV32C compressed instructions
        native_cpi=1.35,
        vm_setup_cycles=40,
    )


#: The paper's three evaluation platforms, by short name.
BOARDS = {
    "cortex-m4": nrf52840,
    "esp32": esp32_wroom32,
    "risc-v": gd32vf103,
}


def all_boards() -> list[Board]:
    """Instantiate the three evaluation boards (paper order)."""
    return [nrf52840(), esp32_wroom32(), gd32vf103()]


def board_by_name(name: str) -> Board:
    try:
        return BOARDS[name]()
    except KeyError:
        raise KeyError(
            f"unknown board {name!r}; choose from {sorted(BOARDS)}"
        ) from None
