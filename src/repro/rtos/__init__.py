"""RIOT-like RTOS simulation substrate.

Public surface: :class:`~repro.rtos.kernel.Kernel` (one device),
:class:`~repro.rtos.board.Board` models of the three evaluation platforms,
threads/timers/event-queues, the SAUL driver registry, and the firmware
memory-accounting model.
"""

from repro.rtos.board import (
    Board,
    VMCostTable,
    all_boards,
    board_by_name,
    esp32_wroom32,
    gd32vf103,
    nrf52840,
)
from repro.rtos.clock import Clock
from repro.rtos.energy import EnergyMeter, EnergyReport, update_energy_uj
from repro.rtos.errors import (
    KernelPanic,
    PowerFailure,
    RTOSError,
    SchedulerError,
    TimerError,
)
from repro.rtos.events import Event, EventQueue
from repro.rtos.firmware import (
    FirmwareImage,
    FirmwareModule,
    engine_flash_bytes,
    os_modules,
)
from repro.rtos.kernel import Kernel
from repro.rtos.nvm import NvmStore
from repro.rtos.saul import (
    Phydat,
    SaulDevice,
    SaulRegistry,
    SENSE_TEMP,
    synthetic_switch,
    synthetic_temperature,
)
from repro.rtos.scheduler import Scheduler
from repro.rtos.shell import DeviceShell
from repro.rtos.thread import (
    PID_UNDEF,
    Exit,
    Sleep,
    Thread,
    ThreadState,
    Wait,
    YieldCPU,
)
from repro.rtos.ztimer import TimerWheel

__all__ = [
    "Board",
    "Clock",
    "DeviceShell",
    "EnergyMeter",
    "EnergyReport",
    "Event",
    "EventQueue",
    "Exit",
    "FirmwareImage",
    "FirmwareModule",
    "Kernel",
    "KernelPanic",
    "NvmStore",
    "PID_UNDEF",
    "Phydat",
    "PowerFailure",
    "RTOSError",
    "SaulDevice",
    "SaulRegistry",
    "SchedulerError",
    "Scheduler",
    "SENSE_TEMP",
    "Sleep",
    "Thread",
    "ThreadState",
    "TimerError",
    "TimerWheel",
    "VMCostTable",
    "Wait",
    "YieldCPU",
    "all_boards",
    "board_by_name",
    "engine_flash_bytes",
    "esp32_wroom32",
    "gd32vf103",
    "nrf52840",
    "os_modules",
    "synthetic_switch",
    "synthetic_temperature",
    "update_energy_uj",
]
