"""Energy accounting (the abstract's "energy consumption" axis).

The meter integrates active vs sleep time from the kernel clock and the
board's current-draw model.  It also prices network transfers, which is
what the §11 discussion trades against virtualization overhead: updating a
small Femto-Container image instead of a full firmware saves radio energy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rtos.board import Board

#: Typical 802.15.4 radio energy per transferred byte at 250 kbit/s,
#: including protocol overhead (µJ/byte, order-of-magnitude model).
RADIO_UJ_PER_BYTE = 2.0


@dataclass
class EnergyReport:
    """Energy split of one measured interval."""

    active_uj: float
    sleep_uj: float
    radio_uj: float = 0.0

    @property
    def total_uj(self) -> float:
        return self.active_uj + self.sleep_uj + self.radio_uj


class EnergyMeter:
    """Integrates energy from cycle counts against a board model."""

    def __init__(self, board: Board):
        self.board = board
        self._active_cycles = 0
        self._sleep_us = 0.0
        self._radio_bytes = 0

    def add_active_cycles(self, cycles: int) -> None:
        self._active_cycles += cycles

    def add_sleep_us(self, duration_us: float) -> None:
        self._sleep_us += duration_us

    def add_radio_bytes(self, count: int) -> None:
        self._radio_bytes += count

    def report(self) -> EnergyReport:
        return EnergyReport(
            active_uj=self.board.active_energy_uj(self._active_cycles),
            sleep_uj=self.board.sleep_energy_uj(self._sleep_us),
            radio_uj=self._radio_bytes * RADIO_UJ_PER_BYTE,
        )


def update_energy_uj(board: Board, payload_bytes: int,
                     install_cycles: int = 0) -> float:
    """Energy cost of one over-the-air update of ``payload_bytes``.

    Used by the ablation bench to compare "update a 500 B container" vs
    "update a 50 kB firmware" — the §11 argument that virtualization pays
    for itself in update energy.
    """
    return payload_bytes * RADIO_UJ_PER_BYTE + board.active_energy_uj(
        install_cycles
    )
