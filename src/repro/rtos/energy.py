"""Energy accounting (the abstract's "energy consumption" axis).

The meter integrates active vs sleep time from the kernel clock and the
board's current-draw model.  It also prices network transfers, which is
what the §11 discussion trades against virtualization overhead: updating a
small Femto-Container image instead of a full firmware saves radio energy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rtos.board import Board

#: Typical 802.15.4 radio energy per transferred byte at 250 kbit/s,
#: including protocol overhead (µJ/byte, order-of-magnitude model).
RADIO_UJ_PER_BYTE = 2.0

#: Fixed per-frame cost (preamble, CSMA listen, turnaround) charged on top
#: of the per-byte cost.  Makes retransmitted frames visible in the energy
#: report even when the payload byte count stays the same (µJ/frame).
RADIO_UJ_PER_FRAME = 0.5


@dataclass
class EnergyReport:
    """Energy split of one measured interval."""

    active_uj: float
    sleep_uj: float
    radio_uj: float = 0.0

    @property
    def total_uj(self) -> float:
        return self.active_uj + self.sleep_uj + self.radio_uj


class EnergyMeter:
    """Integrates energy from cycle counts against a board model."""

    def __init__(self, board: Board):
        self.board = board
        self._active_cycles = 0
        self._sleep_us = 0.0
        self._radio_bytes = 0
        self._radio_frames = 0
        self._tracked: list[tuple[object, int, int]] = []

    def add_active_cycles(self, cycles: int) -> None:
        self._active_cycles += cycles

    def add_sleep_us(self, duration_us: float) -> None:
        self._sleep_us += duration_us

    def add_radio_bytes(self, count: int) -> None:
        self._radio_bytes += count

    def add_radio_frames(self, count: int) -> None:
        self._radio_frames += count

    def track_interface(self, iface) -> None:
        """Charge this radio's future link-layer traffic to the meter.

        The meter keeps a per-interface baseline and folds only the
        *delta* into the report, so an interface may be handed over
        mid-life (e.g. re-tracked after a reboot replaces the radio rig)
        without double charging.  Every frame the interface put on the
        air is priced — including frames that the link then lost and
        CoAP retransmissions — plus everything it received.
        """
        stats = iface.stats
        self._tracked.append(
            (stats, stats.bytes_sent + stats.bytes_received,
             stats.frames_sent)
        )

    def _collect_tracked(self) -> None:
        updated = []
        for stats, byte_base, frame_base in self._tracked:
            byte_now = stats.bytes_sent + stats.bytes_received
            frame_now = stats.frames_sent
            self._radio_bytes += byte_now - byte_base
            self._radio_frames += frame_now - frame_base
            updated.append((stats, byte_now, frame_now))
        self._tracked = updated

    def report(self) -> EnergyReport:
        self._collect_tracked()
        return EnergyReport(
            active_uj=self.board.active_energy_uj(self._active_cycles),
            sleep_uj=self.board.sleep_energy_uj(self._sleep_us),
            radio_uj=(self._radio_bytes * RADIO_UJ_PER_BYTE
                      + self._radio_frames * RADIO_UJ_PER_FRAME),
        )


def update_energy_uj(board: Board, payload_bytes: int,
                     install_cycles: int = 0) -> float:
    """Energy cost of one over-the-air update of ``payload_bytes``.

    Used by the ablation bench to compare "update a 500 B container" vs
    "update a 50 kB firmware" — the §11 argument that virtualization pays
    for itself in update energy.
    """
    return payload_bytes * RADIO_UJ_PER_BYTE + board.active_energy_uj(
        install_cycles
    )
