"""The discrete-event RTOS kernel hosting Femto-Containers.

One :class:`Kernel` models one IoT device: a virtual CPU clock, a strict
priority scheduler, a timer wheel and a set of threads.  The hosting engine
(:mod:`repro.core.engine`), the network stack (:mod:`repro.net`) and the
SUIT update worker (:mod:`repro.suit.worker`) all plug into it.

The simulation loop is event-driven: each :meth:`step` fires due timers,
dispatches the highest-priority ready thread, runs it until its next
syscall, and handles that syscall.  When no thread is ready the clock jumps
to the next timer deadline (the MCU "sleeps").
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.rtos.clock import Clock
from repro.rtos.errors import PowerFailure, SchedulerError
from repro.rtos.events import Event, EventQueue
from repro.rtos.scheduler import Scheduler
from repro.rtos.thread import (
    DEFAULT_STACK_SIZE,
    Exit,
    Sleep,
    Thread,
    ThreadBody,
    ThreadState,
    Wait,
    YieldCPU,
)
from repro.rtos.ztimer import TimerWheel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rtos.board import Board


class Kernel:
    """One simulated device: clock, scheduler, timers, threads."""

    def __init__(self, board: "Board | None" = None,
                 clock: Clock | None = None):
        if board is None:
            from repro.rtos.board import nrf52840

            board = nrf52840()
        self.board = board
        #: Passing ``clock`` keeps one monotonic per-device timeline
        #: across reboots: the replacement kernel of a power-cycled
        #: device continues the same virtual clock, so convergence and
        #: energy accounting never observe time running backwards.
        self.clock = clock if clock is not None else Clock(board.mhz)
        self.timers = TimerWheel(self)
        self.scheduler = Scheduler(self)
        self.threads: dict[int, Thread] = {}
        self._next_pid = 1
        #: Total scheduler steps executed (debug/limit accounting).
        self.steps = 0
        #: True after :meth:`power_fail`: all RAM state is gone and the
        #: kernel refuses to run until the device is rebuilt.
        self.halted = False

    # -- thread management ---------------------------------------------------

    def create_thread(
        self,
        name: str,
        body: ThreadBody | None,
        priority: int = 7,
        stack_size: int = DEFAULT_STACK_SIZE,
        start: bool = True,
    ) -> Thread:
        """Create (and by default ready) a new thread."""
        pid = self._next_pid
        self._next_pid += 1
        thread = Thread(
            kernel=self,
            pid=pid,
            name=name,
            priority=priority,
            body=body,
            stack_size=stack_size,
        )
        self.threads[pid] = thread
        if start:
            self.scheduler.make_ready(thread)
        return thread

    def thread_by_name(self, name: str) -> Thread:
        for thread in self.threads.values():
            if thread.name == name:
                return thread
        raise SchedulerError(f"no thread named {name!r}")

    def wake_with_event(self, thread: Thread, event: Event) -> None:
        """Unblock ``thread`` delivering ``event`` (event-queue use)."""
        if thread.state is not ThreadState.BLOCKED:
            return
        thread.deliver(event)
        self.scheduler.make_ready(thread)

    def wake(self, thread: Thread) -> None:
        """Unblock a sleeping/blocked thread with no payload."""
        if thread.state in (ThreadState.SLEEPING, ThreadState.BLOCKED):
            self.scheduler.make_ready(thread)

    def new_event_queue(self, name: str = "events") -> EventQueue:
        return EventQueue(kernel=self, name=name)

    # -- time ------------------------------------------------------------------

    @property
    def now_us(self) -> float:
        return self.clock.time_us

    @property
    def now_cycles(self) -> int:
        return self.clock.cycles

    # -- power failure -----------------------------------------------------------

    def power_fail(self) -> None:
        """Lose power *now*: every RAM structure is dropped, NVM survives.

        Threads, their stacks, event queues and pending timers all live
        in RAM — after this call they are gone and the kernel is
        :attr:`halted` (``step``/``run`` become no-ops).  The virtual
        clock is *not* reset: the device's timeline is monotonic across
        power cycles, the owner charges the boot cost when it rebuilds
        the device around a fresh kernel (see
        :meth:`~repro.rtos.board.Board.reboot_cycles`).
        """
        self.halted = True
        self.threads.clear()
        self.timers = TimerWheel(self)
        self.scheduler = Scheduler(self)

    # -- main loop ---------------------------------------------------------------

    def step(self) -> bool:
        """Run one scheduling step; False when the system is forever idle."""
        if self.halted:
            return False
        self.steps += 1
        try:
            self.timers.fire_due()
            thread = self.scheduler.pick()
            if thread is None:
                deadline = self.timers.next_deadline()
                if deadline is None:
                    return False
                self.scheduler.enter_idle()
                self.clock.advance_to(max(deadline, self.clock.cycles))
                return True

            self.scheduler.dispatch(thread)
            syscall = thread.resume()
            self._handle_syscall(thread, syscall)
        except PowerFailure:
            # Injected mid-step (chaos/kill-point testing): the device
            # dies at this exact virtual instant, whatever it was doing.
            self.power_fail()
            return False
        return True

    def _handle_syscall(self, thread: Thread, syscall) -> None:
        if isinstance(syscall, Exit) or syscall is None:
            thread.state = ThreadState.ENDED
        elif isinstance(syscall, Sleep):
            thread.state = ThreadState.SLEEPING
            thread.wake_at_cycles = self.clock.cycles + self.clock.us_to_cycles(
                syscall.duration_us
            )
            self.timers.set(
                lambda t=thread: self._wake_sleeper(t), syscall.duration_us
            )
        elif isinstance(syscall, Wait):
            pending = syscall.queue.try_pop()
            if pending is not None:
                thread.deliver(pending)
                self.scheduler.make_ready(thread)
            else:
                thread.state = ThreadState.BLOCKED
                syscall.queue.add_waiter(thread)
        elif isinstance(syscall, YieldCPU):
            self.scheduler.make_ready(thread)
        else:
            raise SchedulerError(
                f"thread {thread.name!r} yielded unknown syscall {syscall!r}"
            )

    def _wake_sleeper(self, thread: Thread) -> None:
        if thread.state is ThreadState.SLEEPING:
            self.scheduler.make_ready(thread)

    def run(self, until_us: float | None = None, max_steps: int = 1_000_000) -> int:
        """Run until the deadline, forever-idle, or the step budget.

        Returns the number of steps executed.
        """
        executed = 0
        while executed < max_steps:
            if until_us is not None and self.clock.time_us >= until_us:
                break
            if not self.step():
                break
            executed += 1
        return executed

    def run_until_idle(self, max_steps: int = 1_000_000) -> int:
        """Run until no thread is ready and no timer is pending."""
        executed = 0
        while executed < max_steps and self.step():
            executed += 1
        return executed
