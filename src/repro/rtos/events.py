"""Event queues connecting interrupt-ish sources to threads.

RIOT's ``event_queue_t`` pattern: producers (timers, the network stack, the
hosting engine) post :class:`Event` objects; one or more consumer threads
block on the queue with the ``Wait`` syscall.  Events are delivered in FIFO
order to waiters in FIFO order.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rtos.kernel import Kernel
    from repro.rtos.thread import Thread


@dataclass
class Event:
    """A queued event with an arbitrary payload."""

    kind: str
    payload: object = None
    #: Cycle timestamp at posting (for latency measurements).
    posted_at_cycles: int = 0


@dataclass
class EventQueue:
    """FIFO event queue with blocking waiters."""

    kernel: "Kernel"
    name: str = "events"
    _events: deque = field(default_factory=deque, repr=False)
    _waiters: deque = field(default_factory=deque, repr=False)

    def post(self, event: Event) -> None:
        """Post an event; wakes the longest-waiting thread if any."""
        event.posted_at_cycles = self.kernel.clock.cycles
        self._events.append(event)
        if self._waiters:
            thread = self._waiters.popleft()
            self.kernel.wake_with_event(thread, self._events.popleft())

    def post_new(self, kind: str, payload: object = None) -> Event:
        event = Event(kind=kind, payload=payload)
        self.post(event)
        return event

    def try_pop(self) -> Event | None:
        """Non-blocking pop (used by the kernel when a Wait arrives)."""
        if self._events:
            return self._events.popleft()
        return None

    def add_waiter(self, thread: "Thread") -> None:
        self._waiters.append(thread)

    def remove_waiter(self, thread: "Thread") -> None:
        try:
            self._waiters.remove(thread)
        except ValueError:
            pass

    @property
    def pending(self) -> int:
        return len(self._events)
