"""RIOT-style device shell for inspection and management.

RIOT firmwares ship a serial shell (``ps``, ``saul``, ``suit`` commands);
operators use it to inspect fleets in the lab.  This shell exposes the
reproduction's equivalents over a scriptable interface: feed a command
line, get the output text.  The CLI's interactive mode and the tests both
drive it.

Commands::

    help                      list commands
    ps                        thread table (pid, name, prio, state, runs)
    uptime                    virtual clock
    hooks                     launchpads and their containers
    fc list                   containers with image hash and accounting
    fc detach <name>          remove a container from its hook
    fc faults <name>          show a container's contained faults
    kv global [key]           dump / read the global store
    kv tenant <tenant> [key]  dump / read a tenant store
    saul                      registered devices and read their values
    ram                       engine RAM accounting (§10.3 view)
    trace                     drained bpf_printf output
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import HostingEngine


class DeviceShell:
    """One device's management shell."""

    def __init__(self, engine: "HostingEngine"):
        self.engine = engine
        self.kernel = engine.kernel
        self._commands: dict[str, Callable[[list[str]], str]] = {
            "help": self._cmd_help,
            "ps": self._cmd_ps,
            "uptime": self._cmd_uptime,
            "hooks": self._cmd_hooks,
            "fc": self._cmd_fc,
            "kv": self._cmd_kv,
            "saul": self._cmd_saul,
            "ram": self._cmd_ram,
            "trace": self._cmd_trace,
        }

    def execute(self, line: str) -> str:
        """Run one command line; always returns text, never raises."""
        parts = line.split()
        if not parts:
            return ""
        command = self._commands.get(parts[0])
        if command is None:
            return f"shell: unknown command {parts[0]!r} (try 'help')"
        try:
            return command(parts[1:])
        except Exception as exc:  # the shell must never crash the device
            return f"shell: error: {exc}"

    # -- commands ------------------------------------------------------------

    def _cmd_help(self, _args: list[str]) -> str:
        return "commands: " + " ".join(sorted(self._commands))

    def _cmd_ps(self, _args: list[str]) -> str:
        lines = [f"{'pid':>4} {'name':20} {'prio':>4} {'state':10} {'runs':>6}"]
        for pid, thread in sorted(self.kernel.threads.items()):
            lines.append(
                f"{pid:>4} {thread.name:20} {thread.priority:>4} "
                f"{thread.state.value:10} {thread.activations:>6}"
            )
        return "\n".join(lines)

    def _cmd_uptime(self, _args: list[str]) -> str:
        clock = self.kernel.clock
        return (f"up {clock.time_ms:.3f} ms "
                f"({clock.cycles} cycles @ {clock.mhz} MHz)")

    def _cmd_hooks(self, _args: list[str]) -> str:
        lines = []
        for hook in self.engine.hooks.values():
            names = ", ".join(c.name for c in hook.containers) or "-"
            lines.append(
                f"{hook.name:24} mode={hook.mode.value:6} "
                f"fires={hook.fires:<6} containers: {names}"
            )
        return "\n".join(lines)

    def _cmd_fc(self, args: list[str]) -> str:
        if not args or args[0] == "list":
            # The image column shows the content-hash prefix: instances
            # stamped from one image share it (and, through the image
            # cache, share one verify report and one JIT template).
            # The strikes/state columns surface the supervisor's verdict
            # per slot; quarantined slots are *detached*, so they get
            # their own rows below the live containers.
            supervisor = getattr(self.engine, "supervisor", None)
            lines = [f"{'name':20} {'tenant':10} {'hook':24} "
                     f"{'runtime':8} "
                     f"{'image':12} {'runs':>6} {'faults':>6} {'ram B':>6} "
                     f"{'strikes':>7} {'state':>11}"]
            for container in self.engine.containers():
                tenant = container.tenant.name if container.tenant else "-"
                hook = container.hook.name if container.hook else "-"
                runtime = getattr(container.program, "runtime", "rbpf")
                health = (supervisor.health(hook, container.name)
                          if supervisor is not None and container.hook
                          else None)
                lines.append(
                    f"{container.name:20} {tenant:10} {hook:24} "
                    f"{runtime:8} "
                    f"{container.image_hash[:12]} "
                    f"{container.runs:>6} {container.fault_count:>6} "
                    f"{container.ram_bytes:>6} "
                    f"{health.strikes if health else 0:>7} "
                    f"{health.state if health else 'ok':>11}"
                )
            if supervisor is not None:
                listed = {(c.hook.name, c.name)
                          for c in self.engine.containers() if c.hook}
                for (hook_name, name), record in sorted(
                        supervisor.counters().items()):
                    if not record.quarantined or (hook_name, name) in listed:
                        continue
                    detained = record.container
                    tenant = (detained.tenant.name if detained.tenant
                              else "-")
                    runtime = getattr(detained.program, "runtime", "rbpf")
                    lines.append(
                        f"{name:20} {tenant:10} {hook_name:24} "
                        f"{runtime:8} "
                        f"{detained.image_hash[:12]} "
                        f"{detained.runs:>6} {detained.fault_count:>6} "
                        f"{detained.ram_bytes:>6} "
                        f"{record.strikes:>7} {record.state:>11}"
                    )
            return "\n".join(lines)
        if args[0] == "detach" and len(args) == 2:
            for container in self.engine.containers():
                if container.name == args[1]:
                    self.engine.detach(container)
                    return f"detached {args[1]}"
            return f"no container named {args[1]!r}"
        if args[0] == "faults" and len(args) == 2:
            for container in self.engine.containers():
                if container.name == args[1]:
                    if not container.faults:
                        return "no faults"
                    return "\n".join(
                        f"[{f.at_cycles}] {f.kind}: {f.message}"
                        for f in container.faults
                    )
            return f"no container named {args[1]!r}"
        return "usage: fc [list|detach <name>|faults <name>]"

    def _cmd_kv(self, args: list[str]) -> str:
        if not args:
            return "usage: kv global [key] | kv tenant <name> [key]"
        if args[0] == "global":
            store = self.engine.global_store
            rest = args[1:]
        elif args[0] == "tenant" and len(args) >= 2:
            tenant = self.engine.tenants.get(args[1])
            if tenant is None:
                return f"no tenant {args[1]!r}"
            store = tenant.store
            rest = args[2:]
        else:
            return "usage: kv global [key] | kv tenant <name> [key]"
        if rest:
            key = int(rest[0], 0)
            return f"{key} = {store.fetch(key)}"
        if not len(store):
            return "(empty)"
        return "\n".join(
            f"0x{key:08x} = {value}"
            for key, value in sorted(store.snapshot().items())
        )

    def _cmd_saul(self, _args: list[str]) -> str:
        registry = self.engine.saul
        if not len(registry):
            return "(no devices)"
        lines = []
        for index in range(len(registry)):
            device = registry.find_nth(index)
            data = device.read()
            lines.append(
                f"#{index} {device.name:12} class=0x{device.device_class:02x} "
                f"value={data.value} scale={data.scale} {data.unit}"
            )
        return "\n".join(lines)

    def _cmd_ram(self, _args: list[str]) -> str:
        engine = self.engine
        lines = [f"stores + housekeeping: {engine.store_ram_bytes()} B"]
        for container in engine.containers():
            vm_bytes = container.vm.ram_bytes if container.vm else 0
            lines.append(
                f"  {container.name:20} instance={vm_bytes} B "
                f"image={container.program.image_size} B"
            )
        lines.append(f"total: {engine.total_ram_bytes()} B")
        return "\n".join(lines)

    def _cmd_trace(self, _args: list[str]) -> str:
        if not self.engine.trace_log:
            return "(no trace output)"
        drained = "\n".join(self.engine.trace_log)
        self.engine.trace_log.clear()
        return drained
