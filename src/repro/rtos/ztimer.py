"""ztimer — RIOT's high-level timer subsystem, simulated.

Timers fire callbacks in "interrupt context": the kernel invokes them at
the virtual instant they expire, before scheduling the next thread.
Callbacks must be short; they typically post an event or wake a thread.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.rtos.errors import TimerError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rtos.kernel import Kernel


@dataclass(order=True)
class _TimerEntry:
    deadline_cycles: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class TimerWheel:
    """Min-heap of pending one-shot timers, keyed by virtual deadline."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self._heap: list[_TimerEntry] = []
        self._seq = itertools.count()

    def set(self, callback: Callable[[], None], delay_us: float) -> _TimerEntry:
        """Arm a one-shot timer ``delay_us`` virtual microseconds from now."""
        if delay_us < 0:
            raise TimerError(f"negative timer delay: {delay_us}")
        deadline = self.kernel.clock.cycles + self.kernel.clock.us_to_cycles(
            delay_us
        )
        entry = _TimerEntry(deadline, next(self._seq), callback)
        heapq.heappush(self._heap, entry)
        return entry

    def set_periodic(
        self, callback: Callable[[], None], period_us: float
    ) -> Callable[[], None]:
        """Arm a repeating timer; returns a function that cancels it."""
        if period_us <= 0:
            raise TimerError(f"non-positive timer period: {period_us}")
        state = {"entry": None, "stopped": False}

        def fire() -> None:
            if state["stopped"]:
                return
            callback()
            if not state["stopped"]:
                state["entry"] = self.set(fire, period_us)

        state["entry"] = self.set(fire, period_us)

        def cancel() -> None:
            state["stopped"] = True
            entry = state["entry"]
            if entry is not None:
                entry.cancelled = True

        return cancel

    def cancel(self, entry: _TimerEntry) -> None:
        entry.cancelled = True

    def next_deadline(self) -> int | None:
        """Earliest pending deadline in cycles, or None when empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].deadline_cycles

    def fire_due(self) -> int:
        """Run every callback whose deadline has passed; returns the count."""
        fired = 0
        now = self.kernel.clock.cycles
        while self._heap and self._heap[0].deadline_cycles <= now:
            entry = heapq.heappop(self._heap)
            if entry.cancelled:
                continue
            entry.callback()
            fired += 1
            now = self.kernel.clock.cycles
        return fired

    @property
    def pending(self) -> int:
        return sum(1 for entry in self._heap if not entry.cancelled)
