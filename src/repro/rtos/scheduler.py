"""Strict-priority preemptive scheduler with the Femto-Container sched hook.

RIOT schedules the highest-priority runnable thread (lower number = higher
priority), round-robin among equals.  Every context switch is a *launchpad*:
when a hosting engine installed a sched-hook function, the scheduler calls
it with the ``{previous, next}`` pid pair — exactly the hot-path hook of
Listing 1/2 — and the hook's execution time is charged to the switch, which
is how the paper's Table 4 overhead becomes measurable here.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable

from repro.rtos.errors import SchedulerError
from repro.rtos.thread import PID_UNDEF, Thread, ThreadState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rtos.kernel import Kernel

#: Signature of the scheduler launchpad: (previous_pid, next_pid) -> None.
SchedHookFn = Callable[[int, int], None]


class Scheduler:
    """Priority scheduler over the kernel's threads."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self._ready: dict[int, deque[Thread]] = {}
        #: Pid of the thread that ran last (PID_UNDEF when idle).
        self.last_pid: int = PID_UNDEF
        #: Total context switches performed (including switches to idle).
        self.switch_count: int = 0
        #: Launchpad installed by the hosting engine (None = empty hook
        #: absent: zero overhead, the firmware was built without the pad).
        self.sched_hook: SchedHookFn | None = None

    def make_ready(self, thread: Thread) -> None:
        """Insert ``thread`` into its priority's ready queue."""
        if thread.state is ThreadState.ENDED:
            raise SchedulerError(f"cannot ready ended thread {thread.name!r}")
        thread.state = ThreadState.READY
        self._ready.setdefault(thread.priority, deque()).append(thread)

    def pick(self) -> Thread | None:
        """Pop the next thread to run (highest priority, FIFO within)."""
        for priority in sorted(self._ready):
            queue = self._ready[priority]
            while queue:
                thread = queue.popleft()
                if thread.state is ThreadState.READY:
                    return thread
            # fall through to lower priorities
        return None

    def dispatch(self, thread: Thread) -> None:
        """Account the switch-in of ``thread`` and fire the sched hook."""
        thread.state = ThreadState.RUNNING
        if thread.pid != self.last_pid:
            self._context_switch(self.last_pid, thread.pid)
            thread.activations += 1
        # Same thread resuming after a yield-to-self is not a switch.

    def enter_idle(self) -> None:
        """Record the switch to 'no thread' (pid 0) when going idle."""
        if self.last_pid != PID_UNDEF:
            self._context_switch(self.last_pid, PID_UNDEF)

    def _context_switch(self, previous: int, next_pid: int) -> None:
        self.switch_count += 1
        self.kernel.clock.charge(self.kernel.board.context_switch_cycles)
        if self.sched_hook is not None:
            self.sched_hook(previous, next_pid)
        self.last_pid = next_pid

    @property
    def ready_count(self) -> int:
        return sum(
            sum(1 for t in queue if t.state is ThreadState.READY)
            for queue in self._ready.values()
        )
