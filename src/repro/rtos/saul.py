"""SAUL — the [S]ensor [A]ctuator [U]ber [L]ayer, RIOT's driver registry.

Containers read sensors exclusively through SAUL helper calls
(``bpf_saul_reg_find_type`` / ``bpf_saul_reg_read``), mirroring the paper's
networked-sensor example (§8.3).  Physical sensors are replaced by
deterministic synthetic drivers: a seeded waveform generator per device, so
experiments are reproducible bit-for-bit.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rtos.kernel import Kernel

# SAUL class ids (subset of RIOT's saul.h).
SENSE_TEMP = 0x82
SENSE_HUM = 0x83
SENSE_LIGHT = 0x84
ACT_SWITCH = 0x01


@dataclass
class Phydat:
    """RIOT's ``phydat_t``: up to three values with a decimal scale."""

    values: tuple[int, ...]
    unit: str = ""
    scale: int = 0

    @property
    def value(self) -> int:
        return self.values[0]


@dataclass
class SaulDevice:
    """One registered driver."""

    name: str
    device_class: int
    read_fn: Callable[[], Phydat]
    write_fn: Callable[[int], int] | None = None
    reads: int = 0
    writes: int = 0

    def read(self) -> Phydat:
        self.reads += 1
        return self.read_fn()

    def write(self, value: int) -> int:
        if self.write_fn is None:
            return -1
        self.writes += 1
        return self.write_fn(value)


class SaulRegistry:
    """The device's driver registry, in registration order."""

    def __init__(self) -> None:
        self._devices: list[SaulDevice] = []

    def register(self, device: SaulDevice) -> int:
        """Register a driver; returns its registry index."""
        self._devices.append(device)
        return len(self._devices) - 1

    def find_nth(self, index: int) -> SaulDevice | None:
        if 0 <= index < len(self._devices):
            return self._devices[index]
        return None

    def find_type(self, device_class: int) -> tuple[int, SaulDevice] | None:
        """First device of the class, as (index, device)."""
        for index, device in enumerate(self._devices):
            if device.device_class == device_class:
                return index, device
        return None

    def __len__(self) -> int:
        return len(self._devices)


def synthetic_temperature(
    kernel: "Kernel",
    seed: int = 42,
    base_centi_c: int = 2150,
    swing_centi_c: int = 350,
    period_s: float = 120.0,
    noise_centi_c: int = 15,
) -> SaulDevice:
    """A deterministic temperature sensor: slow sine plus seeded noise.

    Values are centi-degrees Celsius (RIOT convention: value 2150 with
    scale -2 means 21.50 °C).
    """
    rng = random.Random(seed)

    def read() -> Phydat:
        t_seconds = kernel.clock.time_us / 1e6
        wave = math.sin(2.0 * math.pi * t_seconds / period_s)
        noise = rng.randint(-noise_centi_c, noise_centi_c)
        return Phydat(
            values=(base_centi_c + round(swing_centi_c * wave) + noise,),
            unit="degC",
            scale=-2,
        )

    return SaulDevice(name="nrf_temp", device_class=SENSE_TEMP, read_fn=read)


def synthetic_switch() -> SaulDevice:
    """A write-capable actuator (e.g. an LED) storing its last value."""
    state = {"value": 0}

    def read() -> Phydat:
        return Phydat(values=(state["value"],))

    def write(value: int) -> int:
        state["value"] = value
        return 1

    return SaulDevice(
        name="led0", device_class=ACT_SWITCH, read_fn=read, write_fn=write
    )
