"""Exceptions raised by the RTOS simulation substrate."""

from __future__ import annotations


class RTOSError(Exception):
    """Base class for kernel-level errors."""


class SchedulerError(RTOSError):
    """Invalid scheduling operation (double-start, unknown thread...)."""


class TimerError(RTOSError):
    """Invalid timer configuration."""


class KernelPanic(RTOSError):
    """A fault escaped into the kernel — this aborts the simulation.

    The Femto-Containers fault-isolation property means hosted containers
    must never cause this; tests assert it stays unraised under adversarial
    container code.
    """


class PowerFailure(RTOSError):
    """The device lost power at this exact virtual instant.

    Raised by fault injectors (chaos tests, kill-point sweeps) from
    inside thread or timer context.  The kernel catches it in
    :meth:`~repro.rtos.kernel.Kernel.step`, drops all RAM state
    (threads, timers, queues) and halts — only non-volatile state
    (:class:`~repro.rtos.nvm.NvmStore`) survives until the device is
    rebooted by whoever owns it.
    """
