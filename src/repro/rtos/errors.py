"""Exceptions raised by the RTOS simulation substrate."""

from __future__ import annotations


class RTOSError(Exception):
    """Base class for kernel-level errors."""


class SchedulerError(RTOSError):
    """Invalid scheduling operation (double-start, unknown thread...)."""


class TimerError(RTOSError):
    """Invalid timer configuration."""


class KernelPanic(RTOSError):
    """A fault escaped into the kernel — this aborts the simulation.

    The Femto-Containers fault-isolation property means hosted containers
    must never cause this; tests assert it stays unraised under adversarial
    container code.
    """
