"""Firmware image accounting: flash/RAM budgets (Tables 1 & 3, Figs 2 & 7).

The paper measures memory three ways, reproduced here as one model:

* **OS module inventory** — RIOT configured with 6LoWPAN, CoAP and
  SUIT-compliant OTA totals ~52.4 kB of flash (Table 1 "Host OS", Fig 2's
  53 kB caption).  The per-module split is reconstructed from Fig 2's pie
  percentages of the 57 kB rBPF image: crypto 13 %, network stack 35 %,
  kernel 30 %, OTA 14 %, runtime 8 %.
* **Hosting-engine footprint** — Table 3 measures the three engine builds
  on Cortex-M4 (rBPF 3032 B, Femto-Containers 2992 B, CertFC 1378 B).
  Those are the anchors; other architectures scale with the board's code
  density factor (Fig 7).
* **Per-instance RAM** — computed mechanistically from the VM model
  (11x8 B registers + 512 B stack + housekeeping; see
  :attr:`repro.vm.interpreter.Interpreter.ram_bytes`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rtos.board import Board

# -- OS module inventory (bytes), reconstructed from Fig 2 -------------------

KERNEL_FLASH = 17_100
NETSTACK_FLASH = 19_950
CRYPTO_FLASH = 7_410
OTA_FLASH = 7_980

#: Host OS (no VM) static RAM, Table 1: 16.3 kB.
HOST_OS_RAM = 16_300

#: Hosting-engine flash footprint measured on Cortex-M4 (Table 3).
ENGINE_FLASH_CORTEX_M4 = {
    "rbpf": 3032,
    "femto-containers": 2992,
    "certfc": 1378,
    #: §11 transpiler adds a code generator next to the interpreter.
    "jit": 4650,
}


@dataclass(frozen=True)
class FirmwareModule:
    """One linked component of the firmware image."""

    name: str
    flash_bytes: int
    ram_bytes: int = 0


def os_modules(board: Board | None = None) -> list[FirmwareModule]:
    """The RIOT base image: kernel + network stack + crypto + OTA."""
    factor = board.code_size_factor if board is not None else 1.0
    return [
        FirmwareModule("Crypto", round(CRYPTO_FLASH * factor), 500),
        FirmwareModule("Network stack", round(NETSTACK_FLASH * factor), 8_200),
        FirmwareModule("Kernel", round(KERNEL_FLASH * factor), 4_600),
        FirmwareModule("OTA module", round(OTA_FLASH * factor), 3_000),
    ]


def engine_flash_bytes(implementation: str, board: Board) -> int:
    """Flash footprint of a hosting-engine build on ``board`` (Fig 7)."""
    try:
        base = ENGINE_FLASH_CORTEX_M4[implementation]
    except KeyError:
        raise KeyError(
            f"no flash model for implementation {implementation!r}"
        ) from None
    return round(base * board.code_size_factor)


@dataclass
class FirmwareImage:
    """A composed firmware image with its memory accounting."""

    board: Board
    modules: list[FirmwareModule] = field(default_factory=list)

    @classmethod
    def riot_base(cls, board: Board) -> "FirmwareImage":
        """RIOT configured IoT-ready (Appendix A), without any VM runtime."""
        return cls(board=board, modules=os_modules(board))

    def add_module(self, module: FirmwareModule) -> "FirmwareImage":
        self.modules.append(module)
        return self

    def add_engine(self, implementation: str) -> "FirmwareImage":
        """Link a Femto-Container hosting engine into the image."""
        self.modules.append(
            FirmwareModule(
                "Femto-Container runtime",
                engine_flash_bytes(implementation, self.board),
            )
        )
        return self

    def add_runtime(self, name: str, flash_bytes: int,
                    ram_bytes: int = 0) -> "FirmwareImage":
        """Link an arbitrary VM runtime (used for the §6 candidates)."""
        self.modules.append(
            FirmwareModule(f"{name} runtime", flash_bytes, ram_bytes)
        )
        return self

    # -- accounting ----------------------------------------------------------

    @property
    def flash_bytes(self) -> int:
        return sum(module.flash_bytes for module in self.modules)

    @property
    def static_ram_bytes(self) -> int:
        return sum(module.ram_bytes for module in self.modules)

    def flash_percentages(self) -> dict[str, float]:
        """Per-module share of flash (the Fig 2 pie chart)."""
        total = self.flash_bytes
        if total == 0:
            return {}
        return {
            module.name: 100.0 * module.flash_bytes / total
            for module in self.modules
        }

    def fits(self) -> bool:
        """Does the image fit the board's flash?"""
        return self.flash_bytes <= self.board.flash_kib * 1024

    def flash_overhead_percent(self, baseline: "FirmwareImage") -> float:
        """Relative flash growth vs a baseline image (the <10 % headline)."""
        if baseline.flash_bytes == 0:
            raise ValueError("baseline image is empty")
        return 100.0 * (self.flash_bytes - baseline.flash_bytes) / baseline.flash_bytes
