"""eBPF instruction-set definitions used by the Femto-Container VM.

This module is the single source of truth for the instruction encoding used
throughout the reproduction.  It follows the classic Linux eBPF opcode space
(the one rBPF implements on microcontrollers) plus the two rBPF extension
opcodes for position-independent data access (``LDDWD``/``LDDWR``), which is
exactly the extension the Femto-Containers paper builds on.

Encoding recap (64 bits per slot, little endian)::

    +--------+--------+----------------+--------------------------------+
    | opcode | regs   | offset (i16)   | immediate (i32)                |
    | 8 bit  | 8 bit  | 16 bit         | 32 bit                         |
    +--------+--------+----------------+--------------------------------+

``regs`` packs the destination register in the low nibble and the source
register in the high nibble.  ``LDDW`` (and the rBPF data-relocation
variants) occupy two consecutive slots; the second slot carries the upper 32
bits of the 64-bit immediate in its immediate field.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Instruction classes (opcode bits 0-2)
# --------------------------------------------------------------------------

CLS_LD = 0x00
CLS_LDX = 0x01
CLS_ST = 0x02
CLS_STX = 0x03
CLS_ALU = 0x04
CLS_JMP = 0x05
CLS_JMP32 = 0x06
CLS_ALU64 = 0x07

CLS_MASK = 0x07

# --------------------------------------------------------------------------
# Source operand bit (opcode bit 3) for ALU/JMP classes
# --------------------------------------------------------------------------

SRC_K = 0x00  # use 32-bit immediate as operand
SRC_X = 0x08  # use source register as operand

# --------------------------------------------------------------------------
# ALU / JMP operation field (opcode bits 4-7)
# --------------------------------------------------------------------------

ALU_ADD = 0x00
ALU_SUB = 0x10
ALU_MUL = 0x20
ALU_DIV = 0x30
ALU_OR = 0x40
ALU_AND = 0x50
ALU_LSH = 0x60
ALU_RSH = 0x70
ALU_NEG = 0x80
ALU_MOD = 0x90
ALU_XOR = 0xA0
ALU_MOV = 0xB0
ALU_ARSH = 0xC0
ALU_END = 0xD0

JMP_JA = 0x00
JMP_JEQ = 0x10
JMP_JGT = 0x20
JMP_JGE = 0x30
JMP_JSET = 0x40
JMP_JNE = 0x50
JMP_JSGT = 0x60
JMP_JSGE = 0x70
JMP_CALL = 0x80
JMP_EXIT = 0x90
JMP_JLT = 0xA0
JMP_JLE = 0xB0
JMP_JSLT = 0xC0
JMP_JSLE = 0xD0

OP_MASK = 0xF0

# --------------------------------------------------------------------------
# Memory access size (opcode bits 3-4) and mode (bits 5-7)
# --------------------------------------------------------------------------

SZ_W = 0x00  # 4 bytes
SZ_H = 0x08  # 2 bytes
SZ_B = 0x10  # 1 byte
SZ_DW = 0x18  # 8 bytes

SZ_MASK = 0x18

MODE_IMM = 0x00
MODE_ABS = 0x20
MODE_IND = 0x40
MODE_MEM = 0x60

MODE_MASK = 0xE0

#: Size field value -> access width in bytes.
SIZE_BYTES = {SZ_W: 4, SZ_H: 2, SZ_B: 1, SZ_DW: 8}

# --------------------------------------------------------------------------
# Registers
# --------------------------------------------------------------------------

#: Number of architectural registers (r0..r10).
REG_COUNT = 11
#: Return-value / scratch register.
REG_RET = 0
#: First argument register (hook context pointer arrives here).
REG_CTX = 1
#: Read-only stack base pointer.  Per the paper (and unlike Linux eBPF,
#: where r10 points at the *end* of the frame), rBPF's r10 points at the
#: *beginning* of the 512-byte stack, so stack slots use positive offsets.
REG_STACK = 10

#: Size of the per-instance VM stack mandated by the eBPF spec (bytes).
STACK_SIZE = 512

# --------------------------------------------------------------------------
# Fully-assembled opcodes
# --------------------------------------------------------------------------

# 64-bit ALU
ADD64_IMM = CLS_ALU64 | SRC_K | ALU_ADD  # 0x07
ADD64_REG = CLS_ALU64 | SRC_X | ALU_ADD  # 0x0f
SUB64_IMM = CLS_ALU64 | SRC_K | ALU_SUB
SUB64_REG = CLS_ALU64 | SRC_X | ALU_SUB
MUL64_IMM = CLS_ALU64 | SRC_K | ALU_MUL
MUL64_REG = CLS_ALU64 | SRC_X | ALU_MUL
DIV64_IMM = CLS_ALU64 | SRC_K | ALU_DIV
DIV64_REG = CLS_ALU64 | SRC_X | ALU_DIV
OR64_IMM = CLS_ALU64 | SRC_K | ALU_OR
OR64_REG = CLS_ALU64 | SRC_X | ALU_OR
AND64_IMM = CLS_ALU64 | SRC_K | ALU_AND
AND64_REG = CLS_ALU64 | SRC_X | ALU_AND
LSH64_IMM = CLS_ALU64 | SRC_K | ALU_LSH
LSH64_REG = CLS_ALU64 | SRC_X | ALU_LSH
RSH64_IMM = CLS_ALU64 | SRC_K | ALU_RSH
RSH64_REG = CLS_ALU64 | SRC_X | ALU_RSH
NEG64 = CLS_ALU64 | SRC_K | ALU_NEG
MOD64_IMM = CLS_ALU64 | SRC_K | ALU_MOD
MOD64_REG = CLS_ALU64 | SRC_X | ALU_MOD
XOR64_IMM = CLS_ALU64 | SRC_K | ALU_XOR
XOR64_REG = CLS_ALU64 | SRC_X | ALU_XOR
MOV64_IMM = CLS_ALU64 | SRC_K | ALU_MOV
MOV64_REG = CLS_ALU64 | SRC_X | ALU_MOV
ARSH64_IMM = CLS_ALU64 | SRC_K | ALU_ARSH
ARSH64_REG = CLS_ALU64 | SRC_X | ALU_ARSH

# 32-bit ALU
ADD32_IMM = CLS_ALU | SRC_K | ALU_ADD  # 0x04
ADD32_REG = CLS_ALU | SRC_X | ALU_ADD
SUB32_IMM = CLS_ALU | SRC_K | ALU_SUB
SUB32_REG = CLS_ALU | SRC_X | ALU_SUB
MUL32_IMM = CLS_ALU | SRC_K | ALU_MUL
MUL32_REG = CLS_ALU | SRC_X | ALU_MUL
DIV32_IMM = CLS_ALU | SRC_K | ALU_DIV
DIV32_REG = CLS_ALU | SRC_X | ALU_DIV
OR32_IMM = CLS_ALU | SRC_K | ALU_OR
OR32_REG = CLS_ALU | SRC_X | ALU_OR
AND32_IMM = CLS_ALU | SRC_K | ALU_AND
AND32_REG = CLS_ALU | SRC_X | ALU_AND
LSH32_IMM = CLS_ALU | SRC_K | ALU_LSH
LSH32_REG = CLS_ALU | SRC_X | ALU_LSH
RSH32_IMM = CLS_ALU | SRC_K | ALU_RSH
RSH32_REG = CLS_ALU | SRC_X | ALU_RSH
NEG32 = CLS_ALU | SRC_K | ALU_NEG
MOD32_IMM = CLS_ALU | SRC_K | ALU_MOD
MOD32_REG = CLS_ALU | SRC_X | ALU_MOD
XOR32_IMM = CLS_ALU | SRC_K | ALU_XOR
XOR32_REG = CLS_ALU | SRC_X | ALU_XOR
MOV32_IMM = CLS_ALU | SRC_K | ALU_MOV
MOV32_REG = CLS_ALU | SRC_X | ALU_MOV
ARSH32_IMM = CLS_ALU | SRC_K | ALU_ARSH
ARSH32_REG = CLS_ALU | SRC_X | ALU_ARSH

# Byte-swap (endianness) instructions; immediate selects 16/32/64.
LE = CLS_ALU | SRC_K | ALU_END  # 0xd4
BE = CLS_ALU | SRC_X | ALU_END  # 0xdc

# Memory instructions
LDDW = CLS_LD | SZ_DW | MODE_IMM  # 0x18, two slots
#: rBPF extension: load address of the .data section + imm (two slots).
LDDWD = 0xB8
#: rBPF extension: load address of the .rodata section + imm (two slots).
LDDWR = 0xD8

LDXW = CLS_LDX | SZ_W | MODE_MEM  # 0x61
LDXH = CLS_LDX | SZ_H | MODE_MEM  # 0x69
LDXB = CLS_LDX | SZ_B | MODE_MEM  # 0x71
LDXDW = CLS_LDX | SZ_DW | MODE_MEM  # 0x79

STW = CLS_ST | SZ_W | MODE_MEM  # 0x62
STH = CLS_ST | SZ_H | MODE_MEM  # 0x6a
STB = CLS_ST | SZ_B | MODE_MEM  # 0x72
STDW = CLS_ST | SZ_DW | MODE_MEM  # 0x7a

STXW = CLS_STX | SZ_W | MODE_MEM  # 0x63
STXH = CLS_STX | SZ_H | MODE_MEM  # 0x6b
STXB = CLS_STX | SZ_B | MODE_MEM  # 0x73
STXDW = CLS_STX | SZ_DW | MODE_MEM  # 0x7b

# 64-bit jumps
JA = CLS_JMP | SRC_K | JMP_JA  # 0x05
JEQ_IMM = CLS_JMP | SRC_K | JMP_JEQ
JEQ_REG = CLS_JMP | SRC_X | JMP_JEQ
JGT_IMM = CLS_JMP | SRC_K | JMP_JGT
JGT_REG = CLS_JMP | SRC_X | JMP_JGT
JGE_IMM = CLS_JMP | SRC_K | JMP_JGE
JGE_REG = CLS_JMP | SRC_X | JMP_JGE
JSET_IMM = CLS_JMP | SRC_K | JMP_JSET
JSET_REG = CLS_JMP | SRC_X | JMP_JSET
JNE_IMM = CLS_JMP | SRC_K | JMP_JNE
JNE_REG = CLS_JMP | SRC_X | JMP_JNE
JSGT_IMM = CLS_JMP | SRC_K | JMP_JSGT
JSGT_REG = CLS_JMP | SRC_X | JMP_JSGT
JSGE_IMM = CLS_JMP | SRC_K | JMP_JSGE
JSGE_REG = CLS_JMP | SRC_X | JMP_JSGE
JLT_IMM = CLS_JMP | SRC_K | JMP_JLT
JLT_REG = CLS_JMP | SRC_X | JMP_JLT
JLE_IMM = CLS_JMP | SRC_K | JMP_JLE
JLE_REG = CLS_JMP | SRC_X | JMP_JLE
JSLT_IMM = CLS_JMP | SRC_K | JMP_JSLT
JSLT_REG = CLS_JMP | SRC_X | JMP_JSLT
JSLE_IMM = CLS_JMP | SRC_K | JMP_JSLE
JSLE_REG = CLS_JMP | SRC_X | JMP_JSLE
CALL = CLS_JMP | SRC_K | JMP_CALL  # 0x85
EXIT = CLS_JMP | SRC_K | JMP_EXIT  # 0x95

# 32-bit jumps (operands truncated to 32 bits before comparison)
JEQ32_IMM = CLS_JMP32 | SRC_K | JMP_JEQ
JEQ32_REG = CLS_JMP32 | SRC_X | JMP_JEQ
JGT32_IMM = CLS_JMP32 | SRC_K | JMP_JGT
JGT32_REG = CLS_JMP32 | SRC_X | JMP_JGT
JGE32_IMM = CLS_JMP32 | SRC_K | JMP_JGE
JGE32_REG = CLS_JMP32 | SRC_X | JMP_JGE
JSET32_IMM = CLS_JMP32 | SRC_K | JMP_JSET
JSET32_REG = CLS_JMP32 | SRC_X | JMP_JSET
JNE32_IMM = CLS_JMP32 | SRC_K | JMP_JNE
JNE32_REG = CLS_JMP32 | SRC_X | JMP_JNE
JSGT32_IMM = CLS_JMP32 | SRC_K | JMP_JSGT
JSGT32_REG = CLS_JMP32 | SRC_X | JMP_JSGT
JSGE32_IMM = CLS_JMP32 | SRC_K | JMP_JSGE
JSGE32_REG = CLS_JMP32 | SRC_X | JMP_JSGE
JLT32_IMM = CLS_JMP32 | SRC_K | JMP_JLT
JLT32_REG = CLS_JMP32 | SRC_X | JMP_JLT
JLE32_IMM = CLS_JMP32 | SRC_K | JMP_JLE
JLE32_REG = CLS_JMP32 | SRC_X | JMP_JLE
JSLT32_IMM = CLS_JMP32 | SRC_K | JMP_JSLT
JSLT32_REG = CLS_JMP32 | SRC_X | JMP_JSLT
JSLE32_IMM = CLS_JMP32 | SRC_K | JMP_JSLE
JSLE32_REG = CLS_JMP32 | SRC_X | JMP_JSLE

# --------------------------------------------------------------------------
# Opcode tables
# --------------------------------------------------------------------------

#: Opcodes that occupy two consecutive 8-byte slots.
WIDE_OPCODES = frozenset({LDDW, LDDWD, LDDWR})

_ALU_NAMES = {
    ALU_ADD: "add",
    ALU_SUB: "sub",
    ALU_MUL: "mul",
    ALU_DIV: "div",
    ALU_OR: "or",
    ALU_AND: "and",
    ALU_LSH: "lsh",
    ALU_RSH: "rsh",
    ALU_NEG: "neg",
    ALU_MOD: "mod",
    ALU_XOR: "xor",
    ALU_MOV: "mov",
    ALU_ARSH: "arsh",
}

_JMP_NAMES = {
    JMP_JA: "ja",
    JMP_JEQ: "jeq",
    JMP_JGT: "jgt",
    JMP_JGE: "jge",
    JMP_JSET: "jset",
    JMP_JNE: "jne",
    JMP_JSGT: "jsgt",
    JMP_JSGE: "jsge",
    JMP_JLT: "jlt",
    JMP_JLE: "jle",
    JMP_JSLT: "jslt",
    JMP_JSLE: "jsle",
}


def _build_name_table() -> dict[int, str]:
    names: dict[int, str] = {}
    for op, base in _ALU_NAMES.items():
        if op == ALU_NEG:
            names[CLS_ALU64 | SRC_K | op] = "neg"
            names[CLS_ALU | SRC_K | op] = "neg32"
            continue
        names[CLS_ALU64 | SRC_K | op] = base
        names[CLS_ALU64 | SRC_X | op] = base
        names[CLS_ALU | SRC_K | op] = base + "32"
        names[CLS_ALU | SRC_X | op] = base + "32"
    names[LE] = "le"
    names[BE] = "be"
    for op, base in _JMP_NAMES.items():
        if op == JMP_JA:
            names[CLS_JMP | SRC_K | op] = "ja"
            continue
        names[CLS_JMP | SRC_K | op] = base
        names[CLS_JMP | SRC_X | op] = base
        names[CLS_JMP32 | SRC_K | op] = base + "32"
        names[CLS_JMP32 | SRC_X | op] = base + "32"
    names[CALL] = "call"
    names[EXIT] = "exit"
    names[LDDW] = "lddw"
    names[LDDWD] = "lddwd"
    names[LDDWR] = "lddwr"
    for size, suffix in ((SZ_W, "w"), (SZ_H, "h"), (SZ_B, "b"), (SZ_DW, "dw")):
        names[CLS_LDX | size | MODE_MEM] = "ldx" + suffix
        names[CLS_ST | size | MODE_MEM] = "st" + suffix
        names[CLS_STX | size | MODE_MEM] = "stx" + suffix
    return names


#: Opcode byte -> canonical mnemonic.
OPCODE_NAMES: dict[int, str] = _build_name_table()

#: Every opcode the verifier accepts.
VALID_OPCODES: frozenset[int] = frozenset(OPCODE_NAMES)

#: Opcodes whose semantics write to the destination *register* (as opposed
#: to memory stores, where ``dst`` names the address base register).  The
#: verifier uses this set to enforce that r10 is never written.
REGISTER_WRITE_OPCODES: frozenset[int] = frozenset(
    op
    for op in VALID_OPCODES
    if (op & CLS_MASK) in (CLS_ALU, CLS_ALU64, CLS_LDX)
    or op in (LDDW, LDDWD, LDDWR)
)

#: Conditional and unconditional branch opcodes (offset is a jump target).
BRANCH_OPCODES: frozenset[int] = frozenset(
    op
    for op in VALID_OPCODES
    if (op & CLS_MASK) in (CLS_JMP, CLS_JMP32) and op not in (CALL, EXIT)
)

#: Memory load opcodes (register <- memory).
LOAD_OPCODES: frozenset[int] = frozenset(
    op for op in VALID_OPCODES if (op & CLS_MASK) == CLS_LDX
)

#: Memory store opcodes (memory <- register or immediate).
STORE_OPCODES: frozenset[int] = frozenset(
    op for op in VALID_OPCODES if (op & CLS_MASK) in (CLS_ST, CLS_STX)
)


#: Size field value -> access width in bytes, as a dense 32-entry tuple so
#: the pre-decoder can index it without a dict lookup (the size field is
#: opcode bits 3-4, so ``SIZE_TABLE[op & SZ_MASK]`` is always in range).
SIZE_TABLE: tuple[int, ...] = tuple(
    SIZE_BYTES.get(i & SZ_MASK, 0) for i in range(SZ_MASK + 1)
)


class InstructionKind:
    """Coarse instruction classes used by the per-platform cycle models."""

    ALU = "alu"
    ALU_MUL = "alu_mul"
    ALU_DIV = "alu_div"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    CALL = "call"
    EXIT = "exit"
    LDDW = "lddw"

    ALL = (ALU, ALU_MUL, ALU_DIV, LOAD, STORE, BRANCH, CALL, EXIT, LDDW)


def classify(opcode: int) -> str:
    """Map an opcode byte to its :class:`InstructionKind` cost class."""
    cls = opcode & CLS_MASK
    if opcode in (CALL,):
        return InstructionKind.CALL
    if opcode == EXIT:
        return InstructionKind.EXIT
    if opcode in WIDE_OPCODES:
        return InstructionKind.LDDW
    if cls in (CLS_ALU, CLS_ALU64):
        op = opcode & OP_MASK
        if op == ALU_MUL:
            return InstructionKind.ALU_MUL
        if op in (ALU_DIV, ALU_MOD):
            return InstructionKind.ALU_DIV
        return InstructionKind.ALU
    if cls == CLS_LDX:
        return InstructionKind.LOAD
    if cls in (CLS_ST, CLS_STX):
        return InstructionKind.STORE
    if cls in (CLS_JMP, CLS_JMP32):
        return InstructionKind.BRANCH
    raise ValueError(f"unknown opcode 0x{opcode:02x}")


#: Dense opcode-byte -> cost-class table (``None`` for illegal opcodes).
#: The pre-decode pass and the dispatch loops index this tuple instead of
#: calling :func:`classify` or probing a dict per executed instruction.
KIND_TABLE: tuple[str | None, ...] = tuple(
    classify(op) if op in VALID_OPCODES else None for op in range(256)
)
