"""Install-time template JIT: eBPF bytecode to generated Python (paper §11).

The discussion section proposes removing interpretation overhead by
transpiling portable eBPF bytecode into native instructions *once, at
install time, on the device*.  This module implements that design point
for the simulation as a real template JIT: a verified program is lowered
into Python **source code** — one ``if _t == <pc>:`` dispatch arm per
basic block, registers as local variables, operands and branch targets
constant-folded from the pre-decoded slot table — then compiled with
:func:`compile`/``exec`` into a single function executed per run.  There
is no per-instruction dispatch at all; the only per-run work the template
leaves behind is exactly what cannot be hoisted:

* **memory checks** — loads and stores still go through the access list
  (computed addresses cannot be verified statically);
* the **N_b taken-branch budget**, enforced at block edges;
* **division-by-register** zero checks and helper-call containment.

Two structural optimizations ride on top of the block template:

* **natural-loop folding** — a conditional branch back to its own block
  becomes a native ``while`` (as in PR 1), and *multi-block* natural
  loops (head-only entry, contiguous leader interval) now fold into a
  nested dispatch loop over just their member blocks, so iterating a
  loop never re-traverses the top-level dispatch chain;
* **fallthrough superblocks** — when a block runs into the next leader,
  the successor is inlined in place (bounded by ``_Codegen.INLINE_CAP``),
  so per-kind counts keep batching across the boundary: no faultable
  instruction intervenes there, hence no flush and no dispatch round-trip.

Accounting parity is an invariant: per-kind instruction counts are
flushed to the shared ``kind_counts`` dict *before* every faultable
operation, so a faulted run carries exactly the same
:class:`~repro.vm.interpreter.ExecutionStats` the interpreter would
have produced — the per-platform cycle models (Fig. 8, Table 2/4) are
engine-independent and never see which engine executed the program.

Faithful to the paper's constraints, compilation happens only after
pre-flight verification (the generated code *relies* on the verifier's
guarantees: in-range jump targets, non-zero immediate divisors, shift
amounts in range, intact wide pairs), and installation charges a one-time
cost (modelled per platform) traded against per-run speedup — the
ablation benchmark ``benchmarks/test_sec11_ablations.py`` measures the
crossover.  The compiled template itself is **pure**: every piece of
per-run state (registers, access list, stats, helper trampoline, branch
budget) is passed in as an argument, which is what lets the process-wide
:data:`~repro.vm.imagecache.IMAGE_CACHE` share one template across all
container instances of the same image (keyed by content hash) — attach
re-charges the modelled install cost, but the host does the expensive
transpile/compile work once per image, not once per instance.
"""

from __future__ import annotations

import struct as _struct

from repro.vm import isa
from repro.vm.imagecache import IMAGE_CACHE, CompiledTemplate
from repro.vm.predecode import basic_blocks, find_leaders
from repro.vm.errors import (
    BranchLimitFault,
    DivisionFault,
    HelperFault,
    IllegalInstructionFault,
    VMFault,
)
from repro.vm.helpers import HelperRegistry
from repro.vm.interpreter import (
    ExecutionStats,
    Interpreter,
    VMConfig,
)
from repro.vm.memory import AccessList
from repro.vm.program import Program
from repro.vm.verifier import VerifierConfig

_M64 = (1 << 64) - 1
_M32 = (1 << 32) - 1
_H64 = "0xffffffffffffffff"
_H32 = "0xffffffff"


def _s64(value: int) -> int:
    return value - (1 << 64) if value >= (1 << 63) else value


def _s32(value: int) -> int:
    value &= _M32
    return value - (1 << 32) if value >= (1 << 31) else value


# -- runtime support injected into the generated code's globals -------------

def _div_fault(pc: int) -> None:
    raise DivisionFault("division by zero", pc)


def _mod_fault(pc: int) -> None:
    raise DivisionFault("modulo by zero", pc)


def _branch_fault(limit: int, pc: int) -> None:
    raise BranchLimitFault(
        f"taken-branch budget N_b={limit} exhausted", pc
    )


def _total_fault(limit: int, pc: int) -> None:
    raise BranchLimitFault(
        f"execution exceeded the total budget of {limit} instructions", pc
    )


def _bad_target(target: int) -> None:  # pragma: no cover - verifier forbids
    raise IllegalInstructionFault(f"jump to unmapped block at pc {target}")


def _bswap16(value: int) -> int:
    return int.from_bytes((value & 0xFFFF).to_bytes(2, "little"), "big")


def _bswap32(value: int) -> int:
    return int.from_bytes((value & _M32).to_bytes(4, "little"), "big")


def _bswap64(value: int) -> int:
    return int.from_bytes((value & _M64).to_bytes(8, "little"), "big")


_JIT_GLOBALS = {
    "_div_fault": _div_fault,
    "_mod_fault": _mod_fault,
    "_branch_fault": _branch_fault,
    "_total_fault": _total_fault,
    "_bad_target": _bad_target,
    "_bswap16": _bswap16,
    "_bswap32": _bswap32,
    "_bswap64": _bswap64,
    # Width-specialized packers for the inlined memory fast path.
    "_u1": _struct.Struct("<B").unpack_from,
    "_u2": _struct.Struct("<H").unpack_from,
    "_u4": _struct.Struct("<I").unpack_from,
    "_u8": _struct.Struct("<Q").unpack_from,
    "_p1": _struct.Struct("<B").pack_into,
    "_p2": _struct.Struct("<H").pack_into,
    "_p4": _struct.Struct("<I").pack_into,
    "_p8": _struct.Struct("<Q").pack_into,
}

_SIZE_MASK = {1: 0xFF, 2: 0xFFFF, 4: _M32, 8: _M64}

_UNSIGNED_CMP = {
    isa.JMP_JEQ: "==",
    isa.JMP_JNE: "!=",
    isa.JMP_JGT: ">",
    isa.JMP_JGE: ">=",
    isa.JMP_JLT: "<",
    isa.JMP_JLE: "<=",
}

_SIGNED_CMP = {
    isa.JMP_JSGT: ">",
    isa.JMP_JSGE: ">=",
    isa.JMP_JSLT: "<",
    isa.JMP_JSLE: "<=",
}


class _Codegen:
    """Lowers one verified, pre-decoded program to Python source."""

    #: Cap on slots inlined into one dispatch arm by fallthrough-chain
    #: extension (bounds generated-code growth; see :meth:`emit_block`).
    INLINE_CAP = 64

    def __init__(self, program: Program, total_limit: int | None) -> None:
        self.decoded = program.decoded
        self.total_limit = total_limit
        self.lines: list[str] = []
        self.pending: dict[str, int] = {}
        self.indent = ""
        self.leaders, self.back_targets = find_leaders(self.decoded)
        self.blocks = basic_blocks(self.decoded, self.leaders)
        self.loops = self.find_loops()
        #: leader -> head of the folded loop it belongs to (heads included).
        self.member_of = {
            member: head
            for head, members in self.loops.items()
            for member in members
        }
        # Emission context: the dispatch variable and the member set of
        # the folded loop currently being emitted (None at top level).
        self.var = "_t"
        self.region: frozenset[int] | None = None

    # -- small emission helpers -------------------------------------------

    def emit(self, line: str) -> None:
        self.lines.append(self.indent + line)

    def push_indent(self) -> None:
        self.indent += "    "

    def pop_indent(self) -> None:
        self.indent = self.indent[:-4]

    def count(self, kind: str, pc: int) -> None:
        self.pending[kind] = self.pending.get(kind, 0) + 1
        if self.total_limit is not None:
            # With a total budget the abort point must match the
            # interpreter instruction-for-instruction, so counts are
            # published (and the budget checked) per instruction instead
            # of batched per segment.
            self.flush(pc)

    def flush(self, pc: int) -> None:
        """Publish pending per-kind counts (before any faultable point)."""
        if not self.pending:
            return
        total = 0
        for kind, n in self.pending.items():
            total += n
            self.emit(f"_kc[{kind!r}] += {n}")
        self.pending.clear()
        if self.total_limit is not None:
            self.emit(f"_ex += {total}")
            self.emit(f"if _ex > {self.total_limit}: "
                      f"_total_fault({self.total_limit}, {pc})")

    # -- loop discovery ----------------------------------------------------

    def find_loops(self) -> dict[int, frozenset[int]]:
        """Foldable natural loops: head -> member leader set.

        A candidate is the contiguous leader interval ``[head, backedge]``
        spanned by a backward branch.  It folds only when the head is the
        loop's sole entry: no block outside the interval may branch or
        fall into any member other than the head (edges *leaving* the
        interval anywhere are fine — they lower to ``break``).  Overlapping
        candidates resolve outermost-first; a rejected inner backward edge
        then simply re-dispatches inside the folded outer loop.
        """
        candidates = []
        for block in self.blocks.values():
            term = block.term
            if block.kind != "branch" or term.target >= block.start:
                continue  # forward edge, or a self-loop (folded per block)
            head, end = term.target, block.tpc
            members = frozenset(
                leader for leader in self.leaders if head <= leader <= end
            )
            if len(members) >= 2:
                candidates.append((head, end, members))

        folded: dict[int, frozenset[int]] = {}
        taken: list[tuple[int, int]] = []
        for head, end, members in sorted(
            candidates, key=lambda c: c[0] - c[1]  # widest interval first
        ):
            if any(h <= end and head <= e for h, e in taken):
                continue  # overlaps an already-folded (wider) region
            head_only_entry = all(
                target == head or target not in members
                for block in self.blocks.values()
                if block.start not in members
                for target in block.successors()
            )
            if head_only_entry:
                folded[head] = members
                taken.append((head, end))
        return folded

    # -- whole-function generation ----------------------------------------

    def generate(self) -> str:
        # Hottest-first dispatch: backward-branch targets (loop heads)
        # come before straight-line blocks, the rest stay in program
        # order.  Members of folded loops are dispatched inside their
        # loop's arm and get no top-level arm of their own.
        covered = {
            member
            for head, members in self.loops.items()
            for member in members
            if member != head
        }
        arms = [
            leader
            for leader in sorted(
                self.leaders,
                key=lambda lpc: (lpc not in self.back_targets, lpc),
            )
            if leader not in covered
        ]
        out = [
            "def _fc_main(_regs, _mem, _stats, _kc, _hc, _call, _blimit):",
            "    _ld = _mem.load",
            "    _st = _mem.store",
        ]
        out.extend(f"    r{i} = _regs[{i}]" for i in range(isa.REG_COUNT))
        out.append("    _br = 0")
        if self.total_limit is not None:
            out.append("    _ex = 0")
        out.append("    _t = 0")
        out.append("    while 1:")
        for index, leader in enumerate(arms):
            guard = "if" if index == 0 else "elif"
            out.append(f"        {guard} _t == {leader}:")
            self.indent = " " * 12
            self.lines = []
            if leader in self.loops:
                self.emit_region(leader)
            else:
                self.var, self.region = "_t", None
                self.emit_block(leader)
            out.extend(self.lines)
        out.append("        else:")
        out.append("            _bad_target(_t)")
        return "\n".join(out) + "\n"

    def goto(self, target: int, prefix: str = "") -> None:
        """Emit a control transfer to ``target`` from the current context.

        Inside a folded loop, edges to fellow members re-enter the native
        ``while`` directly; edges leaving the loop ``break`` out with the
        top-level dispatch variable already set.
        """
        if self.region is not None and target not in self.region:
            self.emit(prefix + f"_t = {target}")
            self.emit(prefix + "break")
        else:
            self.emit(prefix + f"{self.var} = {target}")
            self.emit(prefix + "continue")

    def emit_region(self, head: int) -> None:
        """Fold one multi-block natural loop into a native Python loop.

        The loop body becomes a nested dispatch over just its member
        blocks (head first — it is re-entered on every iteration), so an
        iteration never re-traverses the top-level dispatch chain however
        long that chain is.
        """
        members = self.loops[head]
        self.emit(f"_t2 = {head}")
        self.emit("while 1:")
        self.push_indent()
        inner = [head] + sorted(m for m in members if m != head)
        for index, member in enumerate(inner):
            guard = "if" if index == 0 else "elif"
            self.emit(f"{guard} _t2 == {member}:")
            self.push_indent()
            self.var, self.region = "_t2", members
            self.emit_block(member)
            self.pop_indent()
        self.emit("else:")
        self.emit("    _bad_target(_t2)")
        self.pop_indent()
        self.emit("continue")
        self.var, self.region = "_t", None

    def _can_inline(self, target: int, inlined: int) -> bool:
        """May the block at ``target`` be emitted inline (superblock)?"""
        if target not in self.blocks or inlined >= self.INLINE_CAP:
            return False
        if self.region is not None:
            # Stay inside the folded loop; never inline its head (back
            # edges need the head's dispatch arm to land on).
            return target in self.region and target not in self.loops
        # At top level, folded-loop members have no dispatch arm and the
        # head must be entered through its region arm — don't duplicate.
        return target not in self.member_of

    def emit_block(self, start: int) -> None:
        decoded = self.decoded
        current = start
        inlined = 0
        while True:
            block = self.blocks[current]
            kind, tpc, td = block.kind, block.tpc, block.term

            # A conditional branch back to this very block is the classic
            # compiled-loop shape: emit it as a native Python loop so
            # iteration costs no dispatch at all.
            self_loop = (kind == "branch" and td.opcode != isa.JA
                         and td.target == current)
            if self_loop:
                # Counts batched from an inlined predecessor must be
                # published before the loop, not once per iteration.
                self.flush(current)
                self.emit("while 1:")
                self.push_indent()
            for ipc in block.body:
                self.emit_instruction(decoded[ipc], ipc)
            if kind == "exit":
                self.count("exit", tpc)
                self.flush(tpc)
                self.emit("return r0")
                return
            if kind == "branch":
                self.emit_branch(td, tpc, self_loop=self_loop)
                if self_loop:
                    self.pop_indent()
                    self.goto(tpc + 1)
                return
            # Fallthrough into another leader: extend the superblock in
            # place when legal, so per-kind counts keep batching across
            # the boundary (no faultable instruction intervenes there)
            # and the edge costs neither a flush nor a dispatch
            # round-trip.  The target keeps its own dispatch arm for its
            # other predecessors.
            if self._can_inline(tpc, inlined):
                inlined += len(self.blocks[tpc].body) + 1
                current = tpc
                continue
            self.flush(tpc)
            self.goto(tpc)
            return

    # -- straight-line instructions ---------------------------------------

    def emit_instruction(self, d, pc: int) -> None:
        cls = d.cls
        if cls == isa.CLS_ALU64:
            self.count(d.kind, pc)
            self.emit_alu64(d, pc)
        elif cls == isa.CLS_ALU:
            self.count(d.kind, pc)
            self.emit_alu32(d, pc)
        elif cls == isa.CLS_LDX:
            self.count("load", pc)
            self.flush(pc)
            self.emit_load(d)
        elif cls == isa.CLS_STX:
            self.count("store", pc)
            self.flush(pc)
            self.emit_store(d, f"r{d.src}")
        elif cls == isa.CLS_ST:
            self.count("store", pc)
            self.flush(pc)
            self.emit_store(d, f"{d.imm64:#x}")
        elif cls == isa.CLS_LD:  # wide: fully resolved at pre-decode
            self.count("lddw", pc)
            self.emit(f"r{d.dst} = {d.wide_value:#x}")
        elif d.opcode == isa.CALL:
            self.count("call", pc)
            self.flush(pc)
            self.emit(f"_hc[{d.imm}] = _hc.get({d.imm}, 0) + 1")
            self.emit(f"r0 = _call({d.imm}, {pc}, r1, r2, r3, r4, r5)")
        else:  # pragma: no cover - excluded by verification
            raise IllegalInstructionFault(
                f"cannot transpile opcode 0x{d.opcode:02x}", pc
            )

    @staticmethod
    def addr(base: int, offset: int) -> str:
        if offset == 0:
            return f"r{base}"  # registers are invariantly 64-bit masked
        return f"(r{base} + {offset}) & {_H64}"

    def emit_load(self, d) -> None:
        """A load with the access-list fast path expanded inline.

        The MRU region check and the width-specialized unpack are emitted
        directly into the template; only an MRU miss (or a fault) takes the
        out-of-line ``AccessList.load`` path, which re-runs the full
        bisect + permission check and raises the exact reference faults.
        """
        size = d.size
        self.emit(f"_a = {self.addr(d.src, d.offset)}")
        self.emit("_r = _mem._mru")
        self.emit("if _r is not None and _r.start <= _a "
                  f"and _a + {size} <= _r._end and _r._perm_bits & 1:")
        self.emit(f"    r{d.dst} = _u{size}(_r._view, _a - _r.start)[0]")
        self.emit("else:")
        self.emit(f"    r{d.dst} = _ld(_a, {size})")

    def emit_store(self, d, value: str) -> None:
        """A store with the access-list fast path expanded inline."""
        size = d.size
        self.emit(f"_a = {self.addr(d.dst, d.offset)}")
        self.emit("_r = _mem._mru")
        self.emit("if _r is not None and _r.start <= _a "
                  f"and _a + {size} <= _r._end and _r._perm_bits & 2:")
        self.emit(f"    _p{size}(_r._view, _a - _r.start, "
                  f"{value} & {_SIZE_MASK[size]:#x})")
        self.emit("else:")
        self.emit(f"    _st(_a, {size}, {value})")

    def emit_alu64(self, d, pc: int) -> None:
        dst = f"r{d.dst}"
        op = d.op
        operand = f"r{d.src}" if d.use_reg else f"{d.imm64:#x}"
        if op == isa.ALU_ADD:
            self.emit(f"{dst} = ({dst} + {operand}) & {_H64}")
        elif op == isa.ALU_SUB:
            self.emit(f"{dst} = ({dst} - {operand}) & {_H64}")
        elif op == isa.ALU_MUL:
            self.emit(f"{dst} = ({dst} * {operand}) & {_H64}")
        elif op == isa.ALU_OR:
            self.emit(f"{dst} |= {operand}")
        elif op == isa.ALU_AND:
            self.emit(f"{dst} &= {operand}")
        elif op == isa.ALU_XOR:
            self.emit(f"{dst} ^= {operand}")
        elif op == isa.ALU_MOV:
            self.emit(f"{dst} = {operand}")
        elif op == isa.ALU_NEG:
            self.emit(f"{dst} = (-{dst}) & {_H64}")
        elif op == isa.ALU_LSH:
            self.emit(f"{dst} = ({dst} << {self.shift64(d)}) & {_H64}")
        elif op == isa.ALU_RSH:
            self.emit(f"{dst} >>= {self.shift64(d)}")
        elif op == isa.ALU_ARSH:
            self.emit(f"_x = {dst} - 0x10000000000000000 "
                      f"if {dst} >= 0x8000000000000000 else {dst}")
            self.emit(f"{dst} = (_x >> {self.shift64(d)}) & {_H64}")
        elif op in (isa.ALU_DIV, isa.ALU_MOD):
            sym = "//" if op == isa.ALU_DIV else "%"
            if d.use_reg:
                fault = "_div_fault" if op == isa.ALU_DIV else "_mod_fault"
                self.flush(pc)
                self.emit(f"if not r{d.src}: {fault}({pc})")
                self.emit(f"{dst} = {dst} {sym} r{d.src}")
            else:  # immediate divisor, non-zero by verification
                self.emit(f"{dst} = {dst} {sym} {d.imm64:#x}")
        else:  # pragma: no cover - excluded by verification
            raise IllegalInstructionFault(
                f"cannot transpile ALU op 0x{d.opcode:02x}", pc
            )

    def emit_alu32(self, d, pc: int) -> None:
        dst = f"r{d.dst}"
        op = d.op
        if op == isa.ALU_END:
            if d.opcode == isa.LE:
                self.emit(f"{dst} &= {(1 << d.imm) - 1:#x}")
            else:
                self.emit(f"{dst} = _bswap{d.imm}({dst})")
            return
        operand = (f"(r{d.src} & {_H32})" if d.use_reg
                   else f"{d.imm & _M32:#x}")
        if op == isa.ALU_ADD:
            self.emit(f"{dst} = (({dst} & {_H32}) + {operand}) & {_H32}")
        elif op == isa.ALU_SUB:
            self.emit(f"{dst} = (({dst} & {_H32}) - {operand}) & {_H32}")
        elif op == isa.ALU_MUL:
            self.emit(f"{dst} = (({dst} & {_H32}) * {operand}) & {_H32}")
        elif op == isa.ALU_OR:
            self.emit(f"{dst} = ({dst} & {_H32}) | {operand}")
        elif op == isa.ALU_AND:
            self.emit(f"{dst} = {dst} & {operand}")
        elif op == isa.ALU_XOR:
            self.emit(f"{dst} = ({dst} & {_H32}) ^ {operand}")
        elif op == isa.ALU_MOV:
            self.emit(f"{dst} = {operand}")
        elif op == isa.ALU_NEG:
            self.emit(f"{dst} = (-({dst} & {_H32})) & {_H32}")
        elif op == isa.ALU_LSH:
            self.emit(f"{dst} = (({dst} & {_H32}) << {self.shift32(d)})"
                      f" & {_H32}")
        elif op == isa.ALU_RSH:
            self.emit(f"{dst} = ({dst} & {_H32}) >> {self.shift32(d)}")
        elif op == isa.ALU_ARSH:
            self.emit(f"_x = {dst} & {_H32}")
            self.emit("_x = _x - 0x100000000 if _x >= 0x80000000 else _x")
            self.emit(f"{dst} = (_x >> {self.shift32(d)}) & {_H32}")
        elif op in (isa.ALU_DIV, isa.ALU_MOD):
            sym = "//" if op == isa.ALU_DIV else "%"
            if d.use_reg:
                fault = "_div_fault" if op == isa.ALU_DIV else "_mod_fault"
                self.flush(pc)
                self.emit(f"if not (r{d.src} & {_H32}): {fault}({pc})")
                self.emit(f"{dst} = ({dst} & {_H32}) {sym} "
                          f"(r{d.src} & {_H32})")
            else:
                self.emit(f"{dst} = ({dst} & {_H32}) {sym} "
                          f"{d.imm & _M32:#x}")
        else:  # pragma: no cover - excluded by verification
            raise IllegalInstructionFault(
                f"cannot transpile ALU op 0x{d.opcode:02x}", pc
            )

    @staticmethod
    def shift64(d) -> str:
        return f"(r{d.src} & 63)" if d.use_reg else str(d.imm)

    @staticmethod
    def shift32(d) -> str:
        return f"(r{d.src} & 31)" if d.use_reg else str(d.imm)

    # -- block terminators --------------------------------------------------

    def taken_edge(self, pc: int, target: int, nested: bool) -> None:
        extra = "    " if nested else ""
        self.emit(extra + "_br += 1")
        self.emit(extra + "_stats.branches_taken = _br")
        self.emit(extra + f"if _br > _blimit: _branch_fault(_blimit, {pc})")
        self.goto(target, prefix=extra)

    def emit_branch(self, d, pc: int, self_loop: bool = False) -> None:
        self.count("branch", pc)
        self.flush(pc)
        if d.opcode == isa.JA:
            self.taken_edge(pc, d.target, nested=False)
            return
        wide = d.cls == isa.CLS_JMP
        if wide:
            lhs = f"r{d.dst}"
            rhs = f"r{d.src}" if d.use_reg else f"{d.imm64:#x}"
        else:
            lhs = f"(r{d.dst} & {_H32})"
            rhs = (f"(r{d.src} & {_H32})" if d.use_reg
                   else f"{d.imm & _M32:#x}")
        op = d.op
        if op in _UNSIGNED_CMP:
            cond = f"{lhs} {_UNSIGNED_CMP[op]} {rhs}"
        elif op == isa.JMP_JSET:
            cond = f"{lhs} & {rhs}"
        else:  # signed comparison: reinterpret both operands
            if wide:
                self.emit(f"_x = {lhs} - 0x10000000000000000 "
                          f"if {lhs} >= 0x8000000000000000 else {lhs}")
                if d.use_reg:
                    self.emit(f"_y = {rhs} - 0x10000000000000000 "
                              f"if {rhs} >= 0x8000000000000000 else {rhs}")
                    signed_rhs = "_y"
                else:
                    signed_rhs = str(_s64(d.imm64))
            else:
                self.emit(f"_x = {lhs}")
                self.emit("_x = _x - 0x100000000 if _x >= 0x80000000 else _x")
                if d.use_reg:
                    self.emit(f"_y = {rhs}")
                    self.emit(
                        "_y = _y - 0x100000000 if _y >= 0x80000000 else _y"
                    )
                    signed_rhs = "_y"
                else:
                    signed_rhs = str(_s32(d.imm))
            cond = f"_x {_SIGNED_CMP[op]} {signed_rhs}"
        self.emit(f"if {cond}:")
        if self_loop:
            # Taken edge re-enters the native while; budget still enforced.
            self.emit("    _br += 1")
            self.emit("    _stats.branches_taken = _br")
            self.emit(f"    if _br > _blimit: _branch_fault(_blimit, {pc})")
            self.emit("    continue")
            self.emit("break")
        else:
            self.taken_edge(pc, d.target, nested=True)
            self.goto(pc + 1)


def _build_template(
    program: Program, total_limit: int | None
) -> CompiledTemplate:
    """Transpile and compile one image's template (the cache-miss path)."""
    source = _Codegen(program, total_limit).generate()
    code = compile(source, f"<fc-jit:{program.name}>", "exec")
    namespace = dict(_JIT_GLOBALS)
    exec(code, namespace)
    return CompiledTemplate(
        source=source,
        entry=namespace["_fc_main"],
        install_instruction_count=len(program.slots),
    )


class CompiledProgram(Interpreter):
    """A Femto-Container whose bytecode was template-compiled at install.

    Exposes the same ``run``/accounting surface as :class:`Interpreter`, so
    the hosting engine can treat interpreted and transpiled containers
    uniformly; the cost tables key on ``implementation = "jit"``.
    """

    implementation = "jit"

    def __init__(
        self,
        program: Program,
        helpers: HelperRegistry | None = None,
        config: VMConfig | None = None,
        access_list: AccessList | None = None,
        verifier_config: VerifierConfig | None = None,
    ) -> None:
        super().__init__(program, helpers, config, access_list)
        # The paper mandates verification before any native translation;
        # the generated code *depends* on the verifier's guarantees.
        # Both the verdict and the compiled template are shared through
        # the process-wide image cache: the template is pure (all per-run
        # state arrives as arguments), so N instances of one image — on
        # one engine or several — reuse a single compiled function while
        # keeping registers, stack, access list and stats fully private.
        self.report = IMAGE_CACHE.verify(program, verifier_config)
        self.template = IMAGE_CACHE.template(
            program, self.config.total_limit, _build_template
        )
        self.jit_source = self.template.source
        self._entry = self.template.entry

    # -- compilation -------------------------------------------------------

    @property
    def install_instruction_count(self) -> int:
        """Slots processed by the one-pass transpiler (install-time cost)."""
        return len(self.program.slots)

    # -- execution -----------------------------------------------------------

    def _dispatch_loop(self, regs: list[int], stats: ExecutionStats) -> int:
        helpers = self.helpers
        vm = self

        def _call(helper_id, pc, r1, r2, r3, r4, r5):
            try:
                return helpers.call(vm, helper_id, r1, r2, r3, r4, r5)
            except VMFault:
                raise
            except Exception as exc:  # contain helper implementation bugs
                raise HelperFault(
                    f"helper 0x{helper_id:02x} failed: {exc}", pc
                ) from exc

        kind_counts = stats.kind_counts
        try:
            return self._entry(
                regs, self.access_list, stats, kind_counts,
                stats.helper_calls, _call, self.config.branch_limit,
            )
        finally:
            stats.executed = sum(kind_counts.values())


def compile_program(
    program: Program,
    helpers: HelperRegistry | None = None,
    config: VMConfig | None = None,
    access_list: AccessList | None = None,
) -> CompiledProgram:
    """Verify then template-compile ``program``; the install-time flow."""
    return CompiledProgram(program, helpers, config, access_list)
