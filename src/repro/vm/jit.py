"""Install-time transpilation of eBPF bytecode to host closures (paper §11).

The discussion section proposes removing interpretation overhead by
transpiling portable eBPF bytecode into native instructions *once, at
install time, on the device*.  This module implements that design point for
the simulation: a verified program is compiled into a list of Python
closures (one per slot), with branch targets resolved ahead of time, so the
run loop is a direct threaded dispatch with no decode step.

Faithful to the paper's constraints:

* compilation happens only after pre-flight verification, so run-time
  security checks stay simple — memory accesses are still checked against
  the access list at run time (they involve computed addresses and cannot
  be hoisted);
* the finite-execution N_b branch budget is still enforced;
* installation charges a one-time cost (modelled per platform), traded
  against a per-instruction speedup — the ablation benchmark
  ``benchmarks/test_sec11_ablations.py`` measures the crossover.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vm import isa
from repro.vm.errors import (
    BranchLimitFault,
    DivisionFault,
    HelperFault,
    IllegalInstructionFault,
    VMFault,
)
from repro.vm.helpers import HelperRegistry
from repro.vm.interpreter import (
    ExecutionStats,
    Interpreter,
    VMConfig,
    _s32,
    _s64,
    _byteswap,
)
from repro.vm.memory import DATA_BASE, RODATA_BASE, AccessList
from repro.vm.program import Program
from repro.vm.verifier import VerifierConfig, verify

_M64 = (1 << 64) - 1
_M32 = (1 << 32) - 1

#: Relative per-instruction cost of transpiled native code vs interpreted
#: (the paper's native baseline runs ~77x faster than rBPF interpretation;
#: a simple one-pass transpiler recovers most but not all of that, since
#: memory accesses keep their runtime checks).
NATIVE_SPEEDUP_ESTIMATE = 40.0


@dataclass
class JITState:
    """Mutable machine state threaded through compiled closures."""

    regs: list[int]
    pc: int = 0
    branches: int = 0
    executed: int = 0


class CompiledProgram(Interpreter):
    """A Femto-Container whose bytecode was transpiled at install time.

    Exposes the same ``run``/accounting surface as :class:`Interpreter`, so
    the hosting engine can treat interpreted and transpiled containers
    uniformly; the cost tables key on ``implementation = "jit"``.
    """

    implementation = "jit"

    def __init__(
        self,
        program: Program,
        helpers: HelperRegistry | None = None,
        config: VMConfig | None = None,
        access_list: AccessList | None = None,
        verifier_config: VerifierConfig | None = None,
    ) -> None:
        super().__init__(program, helpers, config, access_list)
        # The paper mandates verification before any native translation.
        self.report = verify(program, verifier_config)
        self._ops = self._compile()

    # -- compilation -------------------------------------------------------

    @property
    def install_instruction_count(self) -> int:
        """Slots processed by the one-pass transpiler (install-time cost)."""
        return len(self.program.slots)

    def _compile(self):
        ops = []
        slots = self.program.slots
        pc = 0
        while pc < len(slots):
            ins = slots[pc]
            if ins.opcode in isa.WIDE_OPCODES:
                ops.append(self._compile_wide(ins, slots[pc + 1], pc))
                ops.append(None)  # continuation slot is never entered
                pc += 2
            else:
                ops.append(self._compile_one(ins, pc))
                pc += 1
        return ops

    def _compile_wide(self, ins, cont, pc: int):
        imm64 = ((cont.imm & _M32) << 32) | (ins.imm & _M32)
        if ins.opcode == isa.LDDWD:
            imm64 = (DATA_BASE + imm64) & _M64
        elif ins.opcode == isa.LDDWR:
            imm64 = (RODATA_BASE + imm64) & _M64
        dst = ins.dst
        next_pc = pc + 2

        def op_lddw(state: JITState) -> None:
            state.regs[dst] = imm64
            state.pc = next_pc

        return op_lddw

    def _compile_one(self, ins, pc: int):
        op = ins.opcode
        cls = op & isa.CLS_MASK
        dst, src, offset, imm = ins.dst, ins.src, ins.offset, ins.imm
        next_pc = pc + 1
        access = self.access_list

        if cls in (isa.CLS_ALU64, isa.CLS_ALU):
            return self._compile_alu(ins, next_pc)
        if cls == isa.CLS_LDX:
            size = isa.SIZE_BYTES[op & isa.SZ_MASK]

            def op_load(state: JITState) -> None:
                state.regs[dst] = access.load(
                    (state.regs[src] + offset) & _M64, size
                )
                state.pc = next_pc

            return op_load
        if cls == isa.CLS_STX:
            size = isa.SIZE_BYTES[op & isa.SZ_MASK]

            def op_storex(state: JITState) -> None:
                access.store((state.regs[dst] + offset) & _M64, size,
                             state.regs[src])
                state.pc = next_pc

            return op_storex
        if cls == isa.CLS_ST:
            size = isa.SIZE_BYTES[op & isa.SZ_MASK]
            value = imm & _M64

            def op_store(state: JITState) -> None:
                access.store((state.regs[dst] + offset) & _M64, size, value)
                state.pc = next_pc

            return op_store
        if op == isa.CALL:
            helpers = self.helpers
            helper_id = imm
            vm = self

            def op_call(state: JITState) -> None:
                regs = state.regs
                try:
                    regs[0] = helpers.call(vm, helper_id, regs[1], regs[2],
                                           regs[3], regs[4], regs[5])
                except VMFault:
                    raise
                except Exception as exc:
                    raise HelperFault(
                        f"helper 0x{helper_id:02x} failed: {exc}"
                    ) from exc
                state.pc = next_pc

            return op_call
        if op == isa.EXIT:
            def op_exit(state: JITState) -> None:
                state.pc = -1

            return op_exit
        if cls in (isa.CLS_JMP, isa.CLS_JMP32):
            return self._compile_branch(ins, pc)
        raise IllegalInstructionFault(f"cannot transpile opcode 0x{op:02x}", pc)

    def _compile_alu(self, ins, next_pc: int):
        op = ins.opcode
        width64 = (op & isa.CLS_MASK) == isa.CLS_ALU64
        mask = _M64 if width64 else _M32
        shift_mask = 63 if width64 else 31
        kind = op & isa.OP_MASK
        dst, src = ins.dst, ins.src
        use_reg = bool(op & isa.SRC_X)
        imm = ins.imm & mask

        if kind == isa.ALU_END:
            width = ins.imm

            def op_endian(state: JITState) -> None:
                value = state.regs[dst]
                if op == isa.LE:
                    state.regs[dst] = value & ((1 << width) - 1)
                else:
                    state.regs[dst] = _byteswap(value, width)
                state.pc = next_pc

            return op_endian

        def operand(regs: list[int]) -> int:
            return (regs[src] if use_reg else imm) & mask

        def make(body):
            def op_alu(state: JITState) -> None:
                regs = state.regs
                regs[dst] = body(regs[dst] & mask, operand(regs)) & mask
                state.pc = next_pc

            return op_alu

        if kind == isa.ALU_ADD:
            return make(lambda a, b: a + b)
        if kind == isa.ALU_SUB:
            return make(lambda a, b: a - b)
        if kind == isa.ALU_MUL:
            return make(lambda a, b: a * b)
        if kind == isa.ALU_OR:
            return make(lambda a, b: a | b)
        if kind == isa.ALU_AND:
            return make(lambda a, b: a & b)
        if kind == isa.ALU_XOR:
            return make(lambda a, b: a ^ b)
        if kind == isa.ALU_LSH:
            return make(lambda a, b: a << (b & shift_mask))
        if kind == isa.ALU_RSH:
            return make(lambda a, b: a >> (b & shift_mask))
        if kind == isa.ALU_MOV:
            return make(lambda a, b: b)
        if kind == isa.ALU_NEG:
            return make(lambda a, b: -a)
        if kind == isa.ALU_ARSH:
            signed = _s64 if width64 else _s32
            return make(lambda a, b: signed(a) >> (b & shift_mask))

        def checked_div(a: int, b: int) -> int:
            if b == 0:
                raise DivisionFault("division by zero")
            return a // b

        def checked_mod(a: int, b: int) -> int:
            if b == 0:
                raise DivisionFault("modulo by zero")
            return a % b

        if kind == isa.ALU_DIV:
            return make(checked_div)
        if kind == isa.ALU_MOD:
            return make(checked_mod)
        raise IllegalInstructionFault(f"cannot transpile ALU op 0x{op:02x}")

    def _compile_branch(self, ins, pc: int):
        op = ins.opcode
        target = pc + 1 + ins.offset
        next_pc = pc + 1
        branch_limit = self.config.branch_limit
        dst, src = ins.dst, ins.src
        use_reg = bool(op & isa.SRC_X)
        wide = (op & isa.CLS_MASK) == isa.CLS_JMP
        mask = _M64 if wide else _M32
        imm = ins.imm & mask
        kind = op & isa.OP_MASK
        signed = _s64 if wide else _s32

        preds = {
            isa.JMP_JEQ: lambda a, b: a == b,
            isa.JMP_JNE: lambda a, b: a != b,
            isa.JMP_JGT: lambda a, b: a > b,
            isa.JMP_JGE: lambda a, b: a >= b,
            isa.JMP_JLT: lambda a, b: a < b,
            isa.JMP_JLE: lambda a, b: a <= b,
            isa.JMP_JSET: lambda a, b: bool(a & b),
            isa.JMP_JSGT: lambda a, b: signed(a) > signed(b),
            isa.JMP_JSGE: lambda a, b: signed(a) >= signed(b),
            isa.JMP_JSLT: lambda a, b: signed(a) < signed(b),
            isa.JMP_JSLE: lambda a, b: signed(a) <= signed(b),
        }

        if op == isa.JA:
            def op_ja(state: JITState) -> None:
                state.branches += 1
                if state.branches > branch_limit:
                    raise BranchLimitFault(
                        f"taken-branch budget N_b={branch_limit} exhausted"
                    )
                state.pc = target

            return op_ja

        pred = preds.get(kind)
        if pred is None:
            raise IllegalInstructionFault(f"cannot transpile jump 0x{op:02x}", pc)

        def op_branch(state: JITState) -> None:
            regs = state.regs
            lhs = regs[dst] & mask
            rhs = (regs[src] & mask) if use_reg else imm
            if pred(lhs, rhs):
                state.branches += 1
                if state.branches > branch_limit:
                    raise BranchLimitFault(
                        f"taken-branch budget N_b={branch_limit} exhausted"
                    )
                state.pc = target
            else:
                state.pc = next_pc

        return op_branch

    # -- execution -----------------------------------------------------------

    def _dispatch_loop(self, regs: list[int], stats: ExecutionStats) -> int:
        slots = self.program.slots
        kinds = [
            isa.classify(ins.opcode) if ins.opcode in isa.VALID_OPCODES else None
            for ins in slots
        ]
        kind_counts = stats.kind_counts
        state = JITState(regs=regs)
        ops = self._ops
        total_limit = self.config.total_limit
        try:
            while state.pc >= 0:
                pc = state.pc
                op = ops[pc]
                if op is None:  # pragma: no cover - verifier forbids this
                    raise IllegalInstructionFault("entered continuation slot", pc)
                kind_counts[kinds[pc]] += 1
                state.executed += 1
                if total_limit is not None and state.executed > total_limit:
                    raise BranchLimitFault(
                        f"execution exceeded the total budget of {total_limit}"
                    )
                ins = slots[pc]
                if ins.opcode == isa.CALL:
                    stats.helper_calls[ins.imm] = (
                        stats.helper_calls.get(ins.imm, 0) + 1
                    )
                op(state)
        finally:
            stats.executed = state.executed
            stats.branches_taken = state.branches
        return regs[0]


def compile_program(
    program: Program,
    helpers: HelperRegistry | None = None,
    config: VMConfig | None = None,
    access_list: AccessList | None = None,
) -> CompiledProgram:
    """Verify then transpile ``program``; the paper's install-time flow."""
    return CompiledProgram(program, helpers, config, access_list)
