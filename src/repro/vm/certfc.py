"""CertFC — the formally-verified interpreter build, modelled (paper §9).

The real CertFC is C code extracted from a Coq proof model; it is
*functionally equivalent* to the optimized interpreter but structured as a
flat, defensive state machine: every register index, opcode and memory
access is re-validated at each step (the "defensive runtime checks" of §9),
and the VM state lives in an explicit context struct rather than on the C
stack.

The observable consequences the paper measures, and which this model
reproduces:

* identical results for every valid program (semantic equivalence);
* slower per-instruction execution (Fig. 8) — captured by the per-platform
  cost tables keying on ``implementation = "certfc"``;
* a much smaller flash footprint (Table 3, Fig. 7) — the extracted code has
  a flat structure, modelled in :mod:`repro.rtos.firmware`;
* ~50 B more RAM per instance for the explicit state struct (Table 3).

Implementation note: the base interpreter's pre-decoded dispatch loop only
invokes the per-instruction ``_pre_execute_check`` callback for subclasses
that actually override it, so this defensive build pays for its checks
while the optimized build pays nothing — mirroring how the real firmware
compiles one or the other.  Instruction accounting is engine-independent:
CertFC produces bit-identical :class:`~repro.vm.interpreter.ExecutionStats`
to the optimized interpreter and the template JIT.
"""

from __future__ import annotations

from repro.vm import isa
from repro.vm.errors import IllegalInstructionFault, VerificationError
from repro.vm.interpreter import Interpreter


class CertFCInterpreter(Interpreter):
    """Defensive interpreter modelling the Coq-extracted CertFC runtime."""

    implementation = "certfc"
    #: CertFC stores the full machine state in the context struct instead of
    #: the thread stack: ~50 B extra per instance (paper §10.1).
    housekeeping_bytes = Interpreter.housekeeping_bytes + 48

    def _pre_execute_check(self, ins, regs: list[int], pc: int) -> None:
        """Re-validate the current instruction defensively, like CertFC.

        The optimized build trusts the pre-flight checker; the verified
        build re-establishes its invariants at every step so that safety
        does not depend on any earlier pass.
        """
        if ins.opcode not in isa.VALID_OPCODES and ins.opcode != 0:
            raise IllegalInstructionFault(
                f"defensive check: opcode 0x{ins.opcode:02x}", pc
            )
        if ins.dst >= isa.REG_COUNT or ins.src >= isa.REG_COUNT:
            raise IllegalInstructionFault(
                f"defensive check: register out of range r{ins.dst}/r{ins.src}",
                pc,
            )
        if (
            ins.dst == isa.REG_STACK
            and ins.opcode in isa.REGISTER_WRITE_OPCODES
        ):
            raise IllegalInstructionFault(
                "defensive check: write to read-only r10", pc
            )
        # Registers must stay 64-bit machine words: the Coq proof model
        # maintains this as a state invariant; re-assert it here.
        for index, value in enumerate(regs):
            if not 0 <= value < (1 << 64):  # pragma: no cover - invariant
                raise VerificationError(
                    f"register r{index} escaped the 64-bit domain", pc
                )
