"""One-time pre-decoding of instruction slots into flat execution records.

The paper's §11 discussion proposes erasing interpretation overhead by
doing the expensive per-instruction work *once, at install time*.  This
module is the shared first stage of that idea: it flattens every 8-byte
slot of a :class:`~repro.vm.program.Program` into a :class:`Decoded`
record carrying everything the execution engines would otherwise have to
recompute on every visit — the cost-class string, the instruction class
bits, the memory access width, the masked immediate operands, the
resolved branch target, and the fully-resolved 64-bit immediate of wide
(``lddw``/``lddwd``/``lddwr``) instructions including their data-section
base relocation.

Both the interpreter's dispatch loop and the template JIT compiler
consume this table, so the two engines decode bytecode in exactly one
place.  Pre-decoding is purely a *representation* change: it performs no
checks of its own (illegal opcodes simply get ``kind = None`` and fault
when reached), and it never alters instruction accounting.
"""

from __future__ import annotations

from repro.vm import isa
from repro.vm.instruction import Instruction
from repro.vm.memory import DATA_BASE, RODATA_BASE

_M64 = (1 << 64) - 1
_M32 = (1 << 32) - 1


class Decoded:
    """One pre-decoded instruction slot (plain attributes, no behavior)."""

    __slots__ = (
        "ins",        # the original Instruction (for tracing / defensive checks)
        "opcode",
        "cls",        # opcode & CLS_MASK
        "op",         # opcode & OP_MASK (ALU / JMP operation selector)
        "kind",       # InstructionKind cost class, or None for illegal opcodes
        "dst",
        "src",
        "offset",
        "imm",
        "imm64",      # imm masked to 64 bits (ALU64 / ST immediate operand)
        "use_reg",    # SRC_X bit: operand comes from the source register
        "size",       # memory access width in bytes (0 for non-memory ops)
        "target",     # resolved branch target pc (branches only, else 0)
        "wide_value",  # resolved 64-bit immediate for wide ops (None if truncated)
    )

    def __init__(self, ins: Instruction, pc: int, next_imm: int | None) -> None:
        opcode = ins.opcode
        self.ins = ins
        self.opcode = opcode
        self.cls = opcode & isa.CLS_MASK
        self.op = opcode & isa.OP_MASK
        self.kind = isa.KIND_TABLE[opcode]
        self.dst = ins.dst
        self.src = ins.src
        self.offset = ins.offset
        self.imm = ins.imm
        self.imm64 = ins.imm & _M64
        self.use_reg = bool(opcode & isa.SRC_X)
        self.size = (
            isa.SIZE_TABLE[opcode & isa.SZ_MASK]
            if self.cls in (isa.CLS_LDX, isa.CLS_ST, isa.CLS_STX)
            else 0
        )
        self.target = (
            pc + 1 + ins.offset
            if self.cls in (isa.CLS_JMP, isa.CLS_JMP32)
            else 0
        )
        if opcode in isa.WIDE_OPCODES:
            if next_imm is None:
                self.wide_value = None  # truncated: faults when executed
            else:
                value = ((next_imm & _M32) << 32) | (ins.imm & _M32)
                if opcode == isa.LDDWD:
                    value = (DATA_BASE + value) & _M64
                elif opcode == isa.LDDWR:
                    value = (RODATA_BASE + value) & _M64
                self.wide_value = value
        else:
            self.wide_value = None


def predecode(slots: list[Instruction]) -> list[Decoded]:
    """Flatten ``slots`` into one :class:`Decoded` record per slot.

    Continuation slots of wide instructions get their own records (with
    ``kind = None``, like any other illegal opcode) so the decoded list
    stays index-compatible with the raw slot list and a jump into the
    middle of a wide instruction faults exactly as before.
    """
    n = len(slots)
    return [
        Decoded(ins, pc, slots[pc + 1].imm if pc + 1 < n else None)
        for pc, ins in enumerate(slots)
    ]
