"""One-time pre-decoding of instruction slots into flat execution records.

The paper's §11 discussion proposes erasing interpretation overhead by
doing the expensive per-instruction work *once, at install time*.  This
module is the shared first stage of that idea: it flattens every 8-byte
slot of a :class:`~repro.vm.program.Program` into a :class:`Decoded`
record carrying everything the execution engines would otherwise have to
recompute on every visit — the cost-class string, the instruction class
bits, the memory access width, the masked immediate operands, the
resolved branch target, and the fully-resolved 64-bit immediate of wide
(``lddw``/``lddwd``/``lddwr``) instructions including their data-section
base relocation.

Both the interpreter's dispatch loop and the template JIT compiler
consume this table, so the two engines decode bytecode in exactly one
place.  Pre-decoding is purely a *representation* change: it performs no
checks of its own (illegal opcodes simply get ``kind = None`` and fault
when reached), and it never alters instruction accounting.
"""

from __future__ import annotations

from repro.vm import isa
from repro.vm.instruction import Instruction
from repro.vm.memory import DATA_BASE, RODATA_BASE

_M64 = (1 << 64) - 1
_M32 = (1 << 32) - 1


class Decoded:
    """One pre-decoded instruction slot (plain attributes, no behavior)."""

    __slots__ = (
        "ins",        # the original Instruction (for tracing / defensive checks)
        "opcode",
        "cls",        # opcode & CLS_MASK
        "op",         # opcode & OP_MASK (ALU / JMP operation selector)
        "kind",       # InstructionKind cost class, or None for illegal opcodes
        "dst",
        "src",
        "offset",
        "imm",
        "imm64",      # imm masked to 64 bits (ALU64 / ST immediate operand)
        "use_reg",    # SRC_X bit: operand comes from the source register
        "size",       # memory access width in bytes (0 for non-memory ops)
        "target",     # resolved branch target pc (branches only, else 0)
        "wide_value",  # resolved 64-bit immediate for wide ops (None if truncated)
    )

    def __init__(self, ins: Instruction, pc: int, next_imm: int | None) -> None:
        opcode = ins.opcode
        self.ins = ins
        self.opcode = opcode
        self.cls = opcode & isa.CLS_MASK
        self.op = opcode & isa.OP_MASK
        self.kind = isa.KIND_TABLE[opcode]
        self.dst = ins.dst
        self.src = ins.src
        self.offset = ins.offset
        self.imm = ins.imm
        self.imm64 = ins.imm & _M64
        self.use_reg = bool(opcode & isa.SRC_X)
        self.size = (
            isa.SIZE_TABLE[opcode & isa.SZ_MASK]
            if self.cls in (isa.CLS_LDX, isa.CLS_ST, isa.CLS_STX)
            else 0
        )
        self.target = (
            pc + 1 + ins.offset
            if self.cls in (isa.CLS_JMP, isa.CLS_JMP32)
            else 0
        )
        if opcode in isa.WIDE_OPCODES:
            if next_imm is None:
                self.wide_value = None  # truncated: faults when executed
            else:
                value = ((next_imm & _M32) << 32) | (ins.imm & _M32)
                if opcode == isa.LDDWD:
                    value = (DATA_BASE + value) & _M64
                elif opcode == isa.LDDWR:
                    value = (RODATA_BASE + value) & _M64
                self.wide_value = value
        else:
            self.wide_value = None


def find_leaders(decoded: list[Decoded]) -> tuple[list[int], set[int]]:
    """Basic-block leaders of a pre-decoded program.

    Returns ``(leaders, back_targets)``: the sorted leader pcs and the
    subset that is targeted by a backward branch (loop heads).  The JIT
    uses the latter both to order its dispatch chain hottest-first and to
    seed natural-loop detection.
    """
    leaders = {0}
    back_targets: set[int] = set()
    pc = 0
    n = len(decoded)
    while pc < n:
        d = decoded[pc]
        step = 2 if d.opcode in isa.WIDE_OPCODES else 1
        if (d.cls in (isa.CLS_JMP, isa.CLS_JMP32)
                and d.opcode not in (isa.CALL, isa.EXIT)):
            leaders.add(d.target)
            if d.target <= pc:
                back_targets.add(d.target)
            if d.opcode != isa.JA:
                leaders.add(pc + 1)
        pc += step
    return sorted(leaders), back_targets


class BasicBlock:
    """One straight-line block of a pre-decoded program.

    ``kind`` describes the terminator: ``"exit"`` (program return),
    ``"branch"`` (conditional or unconditional jump at pc ``tpc``, with
    ``term`` holding its :class:`Decoded` record), or ``"fall"`` (the
    block runs into the leader at pc ``tpc``; ``term`` is ``None``).
    """

    __slots__ = ("start", "body", "kind", "tpc", "term")

    def __init__(self, start: int, body: list[int], kind: str, tpc: int,
                 term: Decoded | None) -> None:
        self.start = start
        self.body = body
        self.kind = kind
        self.tpc = tpc
        self.term = term

    def successors(self) -> tuple[int, ...]:
        """Control-flow successor pcs (empty for ``exit`` blocks)."""
        if self.kind == "exit":
            return ()
        if self.kind == "fall":
            return (self.tpc,)
        if self.term.opcode == isa.JA:
            return (self.term.target,)
        return (self.term.target, self.tpc + 1)


def basic_blocks(decoded: list[Decoded],
                 leaders: list[int]) -> dict[int, BasicBlock]:
    """Partition ``decoded`` into :class:`BasicBlock` records by leader."""
    leader_set = set(leaders)
    n = len(decoded)
    blocks: dict[int, BasicBlock] = {}
    for start in leaders:
        body: list[int] = []
        kind, tpc, term = "fall", n, None
        pc = start
        while pc < n:
            d = decoded[pc]
            if d.cls in (isa.CLS_JMP, isa.CLS_JMP32) and d.opcode != isa.CALL:
                kind = "exit" if d.opcode == isa.EXIT else "branch"
                tpc, term = pc, d
                break
            body.append(pc)
            pc += 2 if d.opcode in isa.WIDE_OPCODES else 1
            if pc in leader_set:  # fallthrough edge into the next block
                kind, tpc, term = "fall", pc, None
                break
        blocks[start] = BasicBlock(start, body, kind, tpc, term)
    return blocks


def predecode(slots: list[Instruction]) -> list[Decoded]:
    """Flatten ``slots`` into one :class:`Decoded` record per slot.

    Continuation slots of wide instructions get their own records (with
    ``kind = None``, like any other illegal opcode) so the decoded list
    stays index-compatible with the raw slot list and a jump into the
    middle of a wide instruction faults exactly as before.
    """
    n = len(slots)
    return [
        Decoded(ins, pc, slots[pc + 1].imm if pc + 1 < n else None)
        for pc, ins in enumerate(slots)
    ]
