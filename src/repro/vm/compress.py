"""Variable-length instruction encoding (paper §11, "Fixed- vs
Variable-length Instructions").

The discussion section observes that the fixed 64-bit eBPF encoding wastes
space — "most of the instructions have bit fields that are fixed at zero"
and "the immediate field is not used with half of the instructions and
would reduce the instructions to 32 bits in size when removed".  This
module implements that proposal so its benefit can be measured:

Encoding per instruction::

    +--------+--------+-----------------+------------------+
    | opcode | header | offset (0/1/2B) | immediate (0/1/4B)|
    +--------+--------+-----------------+------------------+

The header byte packs the register nibbles *when they fit* alongside field
presence flags; instructions that use neither offset nor immediate shrink
from 8 to 2 bytes, the common reg-reg ALU forms to 2 bytes, imm8 ALU forms
to 3 bytes.  ``lddw`` keeps a full 8-byte immediate (10 bytes total).

The scheme is lossless: ``decompress(compress(p))`` restores the exact
slot list, which the test suite verifies property-based.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vm import isa
from repro.vm.errors import EncodingError
from repro.vm.instruction import Instruction
from repro.vm.program import Program

# Header flag bits.
_F_OFFSET16 = 0x01  # 2-byte offset follows
_F_OFFSET8 = 0x02  # 1-byte signed offset follows
_F_IMM32 = 0x04  # 4-byte immediate follows
_F_IMM8 = 0x08  # 1-byte signed immediate follows
_F_WIDE = 0x10  # 8-byte immediate follows (lddw family)
# Bits 5-7 are reserved; the register nibbles live in a second byte.


def _fits_i8(value: int) -> bool:
    return -128 <= value <= 127


@dataclass
class CompressionStats:
    """Size accounting for one compressed program."""

    original_bytes: int
    compressed_bytes: int
    instruction_count: int

    @property
    def ratio(self) -> float:
        """Compressed size as a fraction of the original."""
        if self.original_bytes == 0:
            return 1.0
        return self.compressed_bytes / self.original_bytes

    @property
    def saving_percent(self) -> float:
        return 100.0 * (1.0 - self.ratio)


def compress(program: Program) -> bytes:
    """Encode ``program`` into the variable-length stream."""
    out = bytearray()
    pc = 0
    slots = program.slots
    while pc < len(slots):
        ins = slots[pc]
        if ins.opcode in isa.WIDE_OPCODES:
            if pc + 1 >= len(slots):
                raise EncodingError("truncated wide instruction")
            imm64 = ((slots[pc + 1].imm & 0xFFFFFFFF) << 32) | (
                ins.imm & 0xFFFFFFFF
            )
            out.append(ins.opcode)
            out.append(_F_WIDE)
            out.append((ins.src << 4) | ins.dst)
            out.extend(imm64.to_bytes(8, "little"))
            pc += 2
            continue
        flags = 0
        tail = bytearray()
        if ins.offset:
            if _fits_i8(ins.offset):
                flags |= _F_OFFSET8
                tail.extend(ins.offset.to_bytes(1, "little", signed=True))
            else:
                flags |= _F_OFFSET16
                tail.extend(ins.offset.to_bytes(2, "little", signed=True))
        if ins.imm:
            if _fits_i8(ins.imm):
                flags |= _F_IMM8
                tail.extend(ins.imm.to_bytes(1, "little", signed=True))
            else:
                flags |= _F_IMM32
                tail.extend(ins.imm.to_bytes(4, "little", signed=True))
        out.append(ins.opcode)
        out.append(flags)
        out.append((ins.src << 4) | ins.dst)
        out.extend(tail)
        pc += 1
    return bytes(out)


def decompress(raw: bytes) -> list[Instruction]:
    """Decode a variable-length stream back to the exact slot list."""
    slots: list[Instruction] = []
    view = memoryview(raw)
    pos = 0

    def take(count: int) -> memoryview:
        nonlocal pos
        if pos + count > len(view):
            raise EncodingError("truncated compressed stream")
        chunk = view[pos : pos + count]
        pos += count
        return chunk

    while pos < len(view):
        opcode = take(1)[0]
        flags = take(1)[0]
        regs = take(1)[0]
        dst, src = regs & 0xF, regs >> 4
        if flags & _F_WIDE:
            imm64 = int.from_bytes(take(8), "little")
            slots.append(Instruction(opcode=opcode, dst=dst, src=src,
                                     imm=imm64 & 0xFFFFFFFF))
            slots.append(Instruction(opcode=0, imm=(imm64 >> 32) & 0xFFFFFFFF))
            continue
        offset = 0
        if flags & _F_OFFSET8:
            offset = int.from_bytes(take(1), "little", signed=True)
        elif flags & _F_OFFSET16:
            offset = int.from_bytes(take(2), "little", signed=True)
        imm = 0
        if flags & _F_IMM8:
            imm = int.from_bytes(take(1), "little", signed=True)
        elif flags & _F_IMM32:
            imm = int.from_bytes(take(4), "little", signed=True)
        slots.append(Instruction(opcode=opcode, dst=dst, src=src,
                                 offset=offset, imm=imm))
    return slots


def analyze(program: Program) -> CompressionStats:
    """Measure how much the variable-length encoding saves for ``program``."""
    compressed = compress(program)
    return CompressionStats(
        original_bytes=program.code_size,
        compressed_bytes=len(compressed),
        instruction_count=sum(1 for _ in program.iter_logical()),
    )
