"""The eBPF/rBPF virtual machine substrate of the Femto-Container runtime.

Public surface:

* :mod:`repro.vm.isa` — instruction-set constants;
* :class:`~repro.vm.instruction.Instruction` and the binary codec;
* :func:`~repro.vm.asm.assemble` / :func:`~repro.vm.disasm.disassemble`;
* :class:`~repro.vm.builder.ProgramBuilder` — programmatic construction;
* :func:`~repro.vm.verifier.verify` — the pre-flight checker;
* :class:`~repro.vm.interpreter.Interpreter` — the Femto-Container VM;
* :class:`~repro.vm.certfc.CertFCInterpreter` — the verified-build model;
* :func:`~repro.vm.jit.compile_program` — §11 install-time transpilation;
* :mod:`repro.vm.compress` — §11 variable-length encoding;
* :class:`~repro.vm.supervisor.ContainerSupervisor` — crash-loop
  quarantine with exponential-backoff probation.
"""

from repro.vm.asm import assemble
from repro.vm.builder import ProgramBuilder, R
from repro.vm.certfc import CertFCInterpreter
from repro.vm.disasm import disassemble
from repro.vm.errors import (
    AssemblerError,
    BranchLimitFault,
    DivisionFault,
    EncodingError,
    HelperFault,
    IllegalInstructionFault,
    MemoryFault,
    VerificationError,
    VMError,
    VMFault,
)
from repro.vm.helpers import HelperRegistry
from repro.vm.imagecache import IMAGE_CACHE, CompiledTemplate, ImageCache
from repro.vm.instruction import Instruction
from repro.vm.interpreter import (
    ExecutionResult,
    ExecutionStats,
    Interpreter,
    RbpfInterpreter,
    VMConfig,
)
from repro.vm.jit import CompiledProgram, compile_program
from repro.vm.memory import AccessList, MemoryRegion, Permission
from repro.vm.program import Program
from repro.vm.supervisor import (
    ContainerSupervisor,
    SlotHealth,
    SupervisorConfig,
)
from repro.vm.verifier import VerificationReport, VerifierConfig, verify

__all__ = [
    "AccessList",
    "AssemblerError",
    "BranchLimitFault",
    "CertFCInterpreter",
    "CompiledProgram",
    "ContainerSupervisor",
    "DivisionFault",
    "EncodingError",
    "ExecutionResult",
    "ExecutionStats",
    "HelperFault",
    "HelperRegistry",
    "IMAGE_CACHE",
    "ImageCache",
    "CompiledTemplate",
    "IllegalInstructionFault",
    "Instruction",
    "Interpreter",
    "MemoryFault",
    "MemoryRegion",
    "Permission",
    "Program",
    "ProgramBuilder",
    "R",
    "RbpfInterpreter",
    "SlotHealth",
    "SupervisorConfig",
    "VMConfig",
    "VMError",
    "VMFault",
    "VerificationError",
    "VerificationReport",
    "VerifierConfig",
    "assemble",
    "compile_program",
    "disassemble",
    "verify",
]
