"""Two-pass text assembler for the eBPF/rBPF instruction set.

The paper's applications are written in C and compiled with LLVM's eBPF
backend; without a C toolchain this assembler is how programs are authored
in the reproduction (see :mod:`repro.workloads` for the paper's example
applications written in this syntax).

Syntax summary::

    ; comment                         # comment and // comment also work
    entry:                            ; labels end with ':'
        mov   r0, 0                   ; ALU: dst, reg-or-imm
        add32 r1, 42
        neg   r2
        le    r3, 16                  ; byteswap: dst, width
        ldxh  r4, [r1+4]              ; loads: dst, [src+/-offset]
        stxdw [r10+8], r4             ; reg stores: [dst+offset], src
        stw   [r10+16], 7             ; imm stores: [dst+offset], imm
        lddw  r5, 0x1122334455667788  ; wide load (two slots)
        lddwr r6, 0                   ; address of .rodata + imm
        lddwd r7, 8                   ; address of .data + imm
        jeq   r1, 0, done             ; branches: dst, reg-or-imm, target
        ja    entry                   ; targets are labels or +N/-N slots
        call  bpf_fetch_global        ; helpers by name or numeric id
    done:
        exit
"""

from __future__ import annotations

import re

from repro.vm import isa
from repro.vm.errors import AssemblerError
from repro.vm.helpers import HELPER_IDS
from repro.vm.instruction import Instruction, make_wide
from repro.vm.program import Program

_LABEL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_MEM_RE = re.compile(r"^\[\s*(r\d+)\s*(?:([+-])\s*(\w+)\s*)?\]$")

_ALU_NAMES = {
    "add", "sub", "mul", "div", "or", "and", "lsh", "rsh", "mod", "xor",
    "mov", "arsh",
}
_JMP_NAMES = {
    "jeq", "jgt", "jge", "jset", "jne", "jsgt", "jsge", "jlt", "jle",
    "jslt", "jsle",
}
_LD_SIZES = {"w": isa.SZ_W, "h": isa.SZ_H, "b": isa.SZ_B, "dw": isa.SZ_DW}

_ALU_OPS = {
    "add": isa.ALU_ADD, "sub": isa.ALU_SUB, "mul": isa.ALU_MUL,
    "div": isa.ALU_DIV, "or": isa.ALU_OR, "and": isa.ALU_AND,
    "lsh": isa.ALU_LSH, "rsh": isa.ALU_RSH, "mod": isa.ALU_MOD,
    "xor": isa.ALU_XOR, "mov": isa.ALU_MOV, "arsh": isa.ALU_ARSH,
}
_JMP_OPS = {
    "jeq": isa.JMP_JEQ, "jgt": isa.JMP_JGT, "jge": isa.JMP_JGE,
    "jset": isa.JMP_JSET, "jne": isa.JMP_JNE, "jsgt": isa.JMP_JSGT,
    "jsge": isa.JMP_JSGE, "jlt": isa.JMP_JLT, "jle": isa.JMP_JLE,
    "jslt": isa.JMP_JSLT, "jsle": isa.JMP_JSLE,
}


def _strip_comment(line: str) -> str:
    for marker in (";", "#", "//"):
        idx = line.find(marker)
        if idx >= 0:
            line = line[:idx]
    return line.strip()


def _parse_int(text: str, line_no: int) -> int:
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblerError(f"line {line_no}: expected integer, got {text!r}")


def _parse_reg(text: str, line_no: int) -> int:
    if not text.startswith("r") or not text[1:].isdigit():
        raise AssemblerError(f"line {line_no}: expected register, got {text!r}")
    reg = int(text[1:])
    if reg >= 16:
        raise AssemblerError(f"line {line_no}: register field overflow {text!r}")
    return reg


def _parse_mem(text: str, line_no: int) -> tuple[int, int]:
    match = _MEM_RE.match(text)
    if not match:
        raise AssemblerError(
            f"line {line_no}: expected memory operand [rN+off], got {text!r}"
        )
    reg = _parse_reg(match.group(1), line_no)
    offset = 0
    if match.group(3) is not None:
        offset = _parse_int(match.group(3), line_no)
        if match.group(2) == "-":
            offset = -offset
    return reg, offset


class _Statement:
    """One instruction statement with its source position and slot index."""

    __slots__ = ("mnemonic", "operands", "line_no", "slot")

    def __init__(self, mnemonic: str, operands: list[str], line_no: int, slot: int):
        self.mnemonic = mnemonic
        self.operands = operands
        self.line_no = line_no
        self.slot = slot


def assemble(
    source: str,
    rodata: bytes = b"",
    data: bytes = b"",
    name: str = "app",
) -> Program:
    """Assemble eBPF text into a :class:`~repro.vm.program.Program`."""
    statements: list[_Statement] = []
    labels: dict[str, int] = {}
    slot = 0

    for line_no, raw_line in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw_line)
        if not line:
            continue
        while line.endswith(":") or ":" in line.split()[0]:
            head, _, rest = line.partition(":")
            head = head.strip()
            if not _LABEL_RE.match(head):
                raise AssemblerError(f"line {line_no}: bad label {head!r}")
            if head in labels:
                raise AssemblerError(f"line {line_no}: duplicate label {head!r}")
            labels[head] = slot
            line = rest.strip()
            if not line:
                break
        if not line:
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operands = (
            [op.strip() for op in parts[1].split(",")] if len(parts) > 1 else []
        )
        statements.append(_Statement(mnemonic, operands, line_no, slot))
        slot += 2 if mnemonic in ("lddw", "lddwd", "lddwr") else 1

    slots: list[Instruction] = []
    for stmt in statements:
        slots.extend(_emit(stmt, labels))
    return Program(slots=slots, rodata=rodata, data=data, name=name,
                   symbols=dict(labels))


def _emit(stmt: _Statement, labels: dict[str, int]) -> list[Instruction]:
    m, ops, ln = stmt.mnemonic, stmt.operands, stmt.line_no

    def need(count: int) -> None:
        if len(ops) != count:
            raise AssemblerError(
                f"line {ln}: {m} expects {count} operand(s), got {len(ops)}"
            )

    def branch_offset(text: str) -> int:
        if text in labels:
            return labels[text] - (stmt.slot + 1)
        if text.startswith(("+", "-")) or text.lstrip("-").isdigit():
            return _parse_int(text, ln)
        raise AssemblerError(f"line {ln}: unknown branch target {text!r}")

    # ALU (64 and 32 bit)
    base = m[:-2] if m.endswith("32") else m
    if base in _ALU_NAMES and (m == base or m == base + "32"):
        cls = isa.CLS_ALU if m.endswith("32") else isa.CLS_ALU64
        need(2)
        dst = _parse_reg(ops[0], ln)
        if ops[1].startswith("r") and ops[1][1:].isdigit():
            src = _parse_reg(ops[1], ln)
            return [Instruction(cls | isa.SRC_X | _ALU_OPS[base], dst=dst, src=src)]
        return [Instruction(cls | isa.SRC_K | _ALU_OPS[base], dst=dst,
                            imm=_parse_int(ops[1], ln))]
    if m in ("neg", "neg32"):
        need(1)
        cls = isa.CLS_ALU if m == "neg32" else isa.CLS_ALU64
        return [Instruction(cls | isa.SRC_K | isa.ALU_NEG,
                            dst=_parse_reg(ops[0], ln))]
    if m in ("le", "be"):
        need(2)
        return [Instruction(isa.LE if m == "le" else isa.BE,
                            dst=_parse_reg(ops[0], ln),
                            imm=_parse_int(ops[1], ln))]

    # Loads and stores
    if m.startswith("ldx") and m[3:] in _LD_SIZES:
        need(2)
        dst = _parse_reg(ops[0], ln)
        src, offset = _parse_mem(ops[1], ln)
        return [Instruction(isa.CLS_LDX | _LD_SIZES[m[3:]] | isa.MODE_MEM,
                            dst=dst, src=src, offset=offset)]
    if m.startswith("stx") and m[3:] in _LD_SIZES:
        need(2)
        dst, offset = _parse_mem(ops[0], ln)
        src = _parse_reg(ops[1], ln)
        return [Instruction(isa.CLS_STX | _LD_SIZES[m[3:]] | isa.MODE_MEM,
                            dst=dst, src=src, offset=offset)]
    if m.startswith("st") and m[2:] in _LD_SIZES:
        need(2)
        dst, offset = _parse_mem(ops[0], ln)
        return [Instruction(isa.CLS_ST | _LD_SIZES[m[2:]] | isa.MODE_MEM,
                            dst=dst, offset=offset, imm=_parse_int(ops[1], ln))]
    if m in ("lddw", "lddwd", "lddwr"):
        need(2)
        opcode = {"lddw": isa.LDDW, "lddwd": isa.LDDWD, "lddwr": isa.LDDWR}[m]
        imm = _parse_int(ops[1], ln)
        return list(make_wide(opcode, dst=_parse_reg(ops[0], ln), imm64=imm))

    # Jumps, call, exit
    if m == "ja":
        need(1)
        return [Instruction(isa.JA, offset=branch_offset(ops[0]))]
    jbase = m[:-2] if m.endswith("32") else m
    if jbase in _JMP_NAMES and (m == jbase or m == jbase + "32"):
        cls = isa.CLS_JMP32 if m.endswith("32") else isa.CLS_JMP
        need(3)
        dst = _parse_reg(ops[0], ln)
        offset = branch_offset(ops[2])
        if ops[1].startswith("r") and ops[1][1:].isdigit():
            return [Instruction(cls | isa.SRC_X | _JMP_OPS[jbase], dst=dst,
                                src=_parse_reg(ops[1], ln), offset=offset)]
        return [Instruction(cls | isa.SRC_K | _JMP_OPS[jbase], dst=dst,
                            offset=offset, imm=_parse_int(ops[1], ln))]
    if m == "call":
        need(1)
        target = ops[0]
        helper_id = HELPER_IDS.get(target)
        if helper_id is None:
            helper_id = _parse_int(target, ln)
        return [Instruction(isa.CALL, imm=helper_id)]
    if m == "exit":
        need(0)
        return [Instruction(isa.EXIT)]

    raise AssemblerError(f"line {ln}: unknown mnemonic {m!r}")
