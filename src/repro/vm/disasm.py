"""Disassembler: binary eBPF back to the assembler's textual syntax.

``disassemble(program)`` produces text that :func:`repro.vm.asm.assemble`
accepts and that round-trips to the identical bytecode — a property the
test suite checks exhaustively with hypothesis.
"""

from __future__ import annotations

from repro.vm import isa
from repro.vm.errors import EncodingError
from repro.vm.helpers import HELPER_NAMES
from repro.vm.instruction import Instruction, wide_imm64
from repro.vm.program import Program


def _mem_operand(reg: int, offset: int) -> str:
    if offset == 0:
        return f"[r{reg}]"
    sign = "+" if offset >= 0 else "-"
    return f"[r{reg}{sign}{abs(offset)}]"


def _collect_labels(program: Program) -> dict[int, str]:
    """Assign a label to every branch target slot."""
    targets: set[int] = set()
    for pc, ins in program.iter_logical():
        if ins.opcode in isa.BRANCH_OPCODES:
            targets.add(pc + 1 + ins.offset)
    return {slot: f"L{index}" for index, slot in enumerate(sorted(targets))}


def disassemble_instruction(
    ins: Instruction,
    pc: int = 0,
    labels: dict[int, str] | None = None,
    second: Instruction | None = None,
) -> str:
    """Render one logical instruction (pass ``second`` for wide pairs)."""
    labels = labels or {}
    op = ins.opcode
    name = isa.OPCODE_NAMES.get(op)
    if name is None:
        raise EncodingError(f"cannot disassemble opcode 0x{op:02x}")
    cls = op & isa.CLS_MASK

    if op in isa.WIDE_OPCODES:
        if second is None:
            raise EncodingError("wide instruction requires its second slot")
        imm64 = wide_imm64(ins, second)
        return f"{name} r{ins.dst}, 0x{imm64:x}"
    if cls in (isa.CLS_ALU, isa.CLS_ALU64):
        if (op & isa.OP_MASK) == isa.ALU_NEG:
            return f"{name} r{ins.dst}"
        if (op & isa.OP_MASK) == isa.ALU_END:
            return f"{name} r{ins.dst}, {ins.imm}"
        if op & isa.SRC_X:
            return f"{name} r{ins.dst}, r{ins.src}"
        return f"{name} r{ins.dst}, {ins.imm}"
    if cls == isa.CLS_LDX:
        return f"{name} r{ins.dst}, {_mem_operand(ins.src, ins.offset)}"
    if cls == isa.CLS_STX:
        return f"{name} {_mem_operand(ins.dst, ins.offset)}, r{ins.src}"
    if cls == isa.CLS_ST:
        return f"{name} {_mem_operand(ins.dst, ins.offset)}, {ins.imm}"
    if op == isa.CALL:
        helper = HELPER_NAMES.get(ins.imm)
        return f"call {helper}" if helper else f"call 0x{ins.imm:x}"
    if op == isa.EXIT:
        return "exit"
    # Branches
    target = pc + 1 + ins.offset
    where = labels.get(target, f"{ins.offset:+d}")
    if op == isa.JA:
        return f"ja {where}"
    if op & isa.SRC_X:
        return f"{name} r{ins.dst}, r{ins.src}, {where}"
    return f"{name} r{ins.dst}, {ins.imm}, {where}"


def disassemble(program: Program) -> str:
    """Disassemble a whole program into assembler-compatible text."""
    labels = _collect_labels(program)
    lines: list[str] = []
    for pc, ins in program.iter_logical():
        if pc in labels:
            lines.append(f"{labels[pc]}:")
        second = program.slots[pc + 1] if ins.opcode in isa.WIDE_OPCODES else None
        lines.append(
            "    " + disassemble_instruction(ins, pc, labels, second)
        )
    # A trailing label (jump just past a wide pair cannot occur — verified
    # programs end with exit — but unverified round-trips may target the end).
    end = len(program.slots)
    if end in labels:
        lines.append(f"{labels[end]}:")
    return "\n".join(lines) + "\n"
