"""Per-slot container supervision: crash-loop quarantine with probation.

The paper's fault-isolation contract (§3, §5) contains each fault, but
containment alone is not health: a container that faults on *every*
fire is re-armed forever, burning cycles and energy the device budget
cannot spare.  TinyContainer-style middleware makes runtime health
enforcement a middleware responsibility; this module is that layer for
the hosting engine.

A :class:`ContainerSupervisor` watches every
:meth:`~repro.core.engine.HostingEngine.execute` outcome per slot
(``(hook name, container name)`` — the planner's slot identity) and
tracks two streaks:

* **fault streak** — consecutive contained faults; reaching the
  threshold (default: the engine's ``FAULT_DETACH_THRESHOLD``)
  quarantines the container;
* **cycle-overrun streak** — consecutive runs whose modelled cycles
  exceed :attr:`SupervisorConfig.cycle_ceiling` (the rBPF-style per-run
  resource ceiling); ``overrun_streak`` of those quarantines too.

**Quarantine** detaches the container and schedules a *probation*
re-attach through the kernel's timer wheel after an exponentially
backed-off delay (one strike: ``probation_base_us``; doubling per
strike up to ``probation_cap_us``).  The probation re-attach runs the
full verify+install path, so its cycle cost is charged to the virtual
clock exactly like any install.  After :attr:`SupervisorConfig
.max_strikes` strikes the slot is **permanently** quarantined — no
timer, no re-arm, an operator (or a fresh install over the slot) is
the only way back.

A fresh container attached over a supervised slot (hot replace, plan
install, rollback) resets the slot's health: the supervisor cancels
any stale probation timer and starts the new container clean, so a
poisoned image that was quarantined can never be re-armed by a timer
that outlived its rollback.

The supervisor charges **nothing** on the fault-free path: observing a
clean run is pure host-side bookkeeping, so modelled cycles of healthy
workloads are byte-identical with or without supervision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.container import ContainerRun, FemtoContainer
    from repro.core.engine import HostingEngine


@dataclass(frozen=True)
class SupervisorConfig:
    """Policy knobs for one engine's container supervisor."""

    #: Consecutive contained faults before quarantine; ``None`` uses the
    #: engine's ``FAULT_DETACH_THRESHOLD`` (so tests that lower the
    #: class attribute keep working).
    fault_streak: int | None = None
    #: Per-run modelled-cycle ceiling; ``None`` disables overrun checks.
    cycle_ceiling: int | None = None
    #: Consecutive over-ceiling runs before quarantine.
    overrun_streak: int = 4
    #: First probation delay (µs); doubles per strike.
    probation_base_us: float = 2_000_000.0
    #: Probation delay cap (µs).
    probation_cap_us: float = 16_000_000.0
    #: Strikes before the quarantine becomes permanent.
    max_strikes: int = 3


@dataclass
class SlotHealth:
    """Supervision state of one ``(hook, container name)`` slot."""

    hook_name: str
    container: "FemtoContainer"
    #: Consecutive contained faults (reset by any clean run).
    fault_streak: int = 0
    #: Consecutive runs over the cycle ceiling (reset by a cheap run).
    overrun_streak: int = 0
    #: Lifetime over-ceiling runs.
    overruns: int = 0
    #: Quarantines this container has earned on this slot.
    strikes: int = 0
    #: Probation re-attaches that actually happened.
    probations: int = 0
    #: Currently detached by the supervisor.
    quarantined: bool = False
    #: Struck out: no probation timer will ever re-arm it.
    permanent: bool = False
    #: Virtual instant of the pending probation re-attach (if any).
    rearm_at_us: float | None = None
    _rearm_entry: object = field(default=None, repr=False)

    @property
    def state(self) -> str:
        if self.permanent:
            return "permanent"
        if self.quarantined:
            return "quarantined"
        return "ok"


class ContainerSupervisor:
    """Crash-loop/overrun watchdog for one hosting engine."""

    def __init__(self, engine: "HostingEngine",
                 config: SupervisorConfig | None = None) -> None:
        self.engine = engine
        self.config = config if config is not None else SupervisorConfig()
        self._records: dict[tuple[str, str], SlotHealth] = {}
        #: Lifetime quarantine events (probation re-arms do not reset it).
        self.quarantines = 0

    # -- observation (called from HostingEngine.execute) -------------------

    def observe(self, container: "FemtoContainer",
                run: "ContainerRun") -> None:
        """Account one run; quarantine the slot when a streak trips.

        Called after the engine recorded the run and before
        ``execute`` returns, i.e. exactly where the legacy
        fault-detach fired — so a SYNC hook firing observes the detach
        of the container that just ran, like before.
        """
        hook = container.hook
        if hook is None:
            return
        key = (hook.name, container.name)
        record = self._records.get(key)
        if record is None or record.container is not container:
            record = SlotHealth(hook.name, container)
            self._records[key] = record
        config = self.config
        if run.fault is not None:
            record.fault_streak += 1
        else:
            record.fault_streak = 0
        ceiling = config.cycle_ceiling
        if ceiling is not None:
            if run.cycles > ceiling:
                record.overrun_streak += 1
                record.overruns += 1
            else:
                record.overrun_streak = 0
        threshold = (config.fault_streak
                     if config.fault_streak is not None
                     else self.engine.FAULT_DETACH_THRESHOLD)
        if (record.fault_streak >= threshold
                or (ceiling is not None
                    and record.overrun_streak >= config.overrun_streak)):
            self._quarantine(record)

    def _quarantine(self, record: SlotHealth) -> None:
        record.strikes += 1
        record.fault_streak = 0
        record.overrun_streak = 0
        self.quarantines += 1
        self.engine.detach(record.container)
        record.quarantined = True
        if record.strikes >= self.config.max_strikes:
            record.permanent = True
            record.rearm_at_us = None
            return
        delay = min(
            self.config.probation_base_us * 2 ** (record.strikes - 1),
            self.config.probation_cap_us,
        )
        record.rearm_at_us = self.engine.kernel.now_us + delay
        record._rearm_entry = self.engine.kernel.timers.set(
            lambda r=record: self._probation_rearm(r), delay,
        )

    def _probation_rearm(self, record: SlotHealth) -> None:
        """Timer-driven probation: re-attach the quarantined container.

        Guarded against every way the world can have moved on while the
        timer was pending: a permanent strike-out, a manual re-attach,
        a fresh install that took the slot (rollback!), or a hook that
        no longer exists.  A stale timer must never re-arm a container
        someone else already dealt with.
        """
        record._rearm_entry = None
        record.rearm_at_us = None
        if record.permanent or not record.quarantined:
            return
        container = record.container
        key = (record.hook_name, container.name)
        if self._records.get(key) is not record:
            return  # superseded by a newer container's health record
        if container.hook is not None:
            record.quarantined = False  # operator re-attached it manually
            return
        hook = self.engine.hooks.get(record.hook_name)
        if hook is None:
            return
        if any(c.name == container.name for c in hook.containers):
            # A fresh install owns the slot now; this record is stale.
            del self._records[key]
            return
        try:
            # Full verify+install price on the virtual clock, like any
            # attach — probation is never free.
            self.engine.attach(container, record.hook_name)
        except Exception:
            # The image no longer passes pre-flight (policy changed,
            # hook repurposed): strike out rather than retry forever.
            record.permanent = True
            return
        record.quarantined = False
        record.probations += 1

    # -- lifecycle notifications ------------------------------------------

    def notify_attach(self, container: "FemtoContainer",
                      hook_name: str) -> None:
        """A container was attached to ``hook_name`` — reconcile health.

        The same container coming back (manual or probation re-attach)
        clears its quarantine flag; a *different* container taking the
        slot starts with fresh health and kills any stale probation
        timer, so a rolled-back slot can never be re-poisoned by it.
        """
        key = (hook_name, container.name)
        record = self._records.get(key)
        if record is None:
            return
        if record._rearm_entry is not None:
            self.engine.kernel.timers.cancel(record._rearm_entry)
            record._rearm_entry = None
            record.rearm_at_us = None
        if record.container is container:
            record.quarantined = False
        else:
            del self._records[key]

    # -- introspection ------------------------------------------------------

    def health(self, hook_name: str, name: str) -> SlotHealth | None:
        return self._records.get((hook_name, name))

    def counters(self) -> dict[tuple[str, str], SlotHealth]:
        """All per-slot health records, keyed like ``fault_counts()``."""
        return dict(self._records)

    def quarantined_slots(self) -> list[tuple[str, str]]:
        """Slots currently held out of service (incl. permanent)."""
        return sorted(key for key, record in self._records.items()
                      if record.quarantined)
