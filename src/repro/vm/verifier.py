"""Pre-flight instruction checker (paper §7, "Pre-flight instruction checks").

The checker runs once, when an application is loaded for the first time.
It rejects programs that could not possibly execute safely, so that the
interpreter never needs to re-validate jump targets at runtime:

* every opcode must be a known instruction;
* register fields must name existing registers (r0..r10), and the read-only
  stack pointer r10 must never appear as an ALU/load destination;
* jump targets must land inside the program text and never in the middle of
  a wide (two-slot) instruction;
* ``call`` immediates must reference helpers allowed by the container's
  contract;
* immediate divisors of zero and out-of-range shift amounts are rejected;
* the program must end in ``exit`` (or an unconditional backward jump), and
  its length is bounded by the N_i instruction budget.

Together with the runtime N_b taken-branch budget this bounds every
execution to at most N_i * N_b instructions — the paper's finite-execution
guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.vm import isa
from repro.vm.errors import VerificationError
from repro.vm.program import Program


@dataclass(frozen=True)
class VerifierConfig:
    """Limits and grants applied during pre-flight checking.

    Instances are hashable and key the process-wide image cache (a
    verification verdict is only shareable between attaches that ran
    under the *same* limits and helper grants), so ``allowed_helpers``
    is coerced to a frozenset even when a caller passes a mutable set.
    """

    #: N_i — maximum number of instruction slots in a program.
    max_instructions: int = 4096
    #: Helper ids the container's contract allows it to call.  ``None``
    #: means "any registered helper" (used for trusted local tooling).
    allowed_helpers: frozenset[int] | None = None
    #: When False, the rBPF data-section extension opcodes are rejected
    #: (models the original single-VM rBPF from the PEMWN'20 paper).
    allow_data_extensions: bool = True

    def __post_init__(self) -> None:
        if self.allowed_helpers is not None and not isinstance(
            self.allowed_helpers, frozenset
        ):
            object.__setattr__(
                self, "allowed_helpers", frozenset(self.allowed_helpers)
            )


@dataclass
class VerificationReport:
    """Static facts gathered while checking; consumed by the engine."""

    instruction_count: int = 0
    branch_count: int = 0
    helper_ids: set[int] = field(default_factory=set)
    max_jump_target: int = 0


def verify(program: Program, config: VerifierConfig | None = None) -> VerificationReport:
    """Check ``program`` and return a report, or raise VerificationError."""
    config = config or VerifierConfig()
    slots = program.slots
    if not slots:
        raise VerificationError("empty program")
    if len(slots) > config.max_instructions:
        raise VerificationError(
            f"program has {len(slots)} slots, exceeding the N_i budget of "
            f"{config.max_instructions}"
        )

    report = VerificationReport()
    # First pass: find the slots that are wide-instruction continuations;
    # they are not valid instruction boundaries (and not valid jump targets).
    continuation = [False] * len(slots)
    pc = 0
    while pc < len(slots):
        ins = slots[pc]
        if ins.opcode in isa.WIDE_OPCODES:
            if pc + 1 >= len(slots):
                raise VerificationError("wide instruction truncated", pc)
            cont = slots[pc + 1]
            if cont.opcode != 0 or cont.dst or cont.src or cont.offset:
                raise VerificationError(
                    "malformed continuation slot of wide instruction", pc + 1
                )
            continuation[pc + 1] = True
            pc += 2
        else:
            pc += 1

    last_pc = 0
    for pc, ins in enumerate(slots):
        if continuation[pc]:
            continue
        last_pc = pc
        report.instruction_count += 1
        op = ins.opcode
        if op not in isa.VALID_OPCODES:
            raise VerificationError(f"unknown opcode 0x{op:02x}", pc)
        if not config.allow_data_extensions and op in (isa.LDDWD, isa.LDDWR):
            raise VerificationError(
                "data-section extension opcodes disabled by configuration", pc
            )

        # Register fields: 4 bits can name 16 registers but only 11 exist.
        if ins.dst >= isa.REG_COUNT or ins.src >= isa.REG_COUNT:
            raise VerificationError(
                f"register field out of range (dst=r{ins.dst}, src=r{ins.src})",
                pc,
            )
        # r10 is read-only: it may base a store address but never receive a
        # register write.
        if ins.dst == isa.REG_STACK and op in isa.REGISTER_WRITE_OPCODES:
            raise VerificationError("write to read-only register r10", pc)

        cls = op & isa.CLS_MASK
        if cls in (isa.CLS_ALU, isa.CLS_ALU64):
            _check_alu(ins, pc)
        elif op in isa.BRANCH_OPCODES:
            report.branch_count += 1
            target = pc + 1 + ins.offset
            if not 0 <= target < len(slots):
                raise VerificationError(
                    f"jump target {target} outside program of {len(slots)} slots",
                    pc,
                )
            if continuation[target]:
                raise VerificationError(
                    f"jump target {target} lands inside a wide instruction", pc
                )
            report.max_jump_target = max(report.max_jump_target, target)
        elif op == isa.CALL:
            helper_id = ins.imm
            if config.allowed_helpers is not None and helper_id not in config.allowed_helpers:
                raise VerificationError(
                    f"helper 0x{helper_id:02x} not allowed by contract", pc
                )
            report.helper_ids.add(helper_id)
        elif op == isa.LDDWD:
            if ins.imm >= max(len(program.data), 1) and ins.imm != 0:
                raise VerificationError(
                    f"lddwd immediate {ins.imm} outside .data section "
                    f"({len(program.data)} bytes)",
                    pc,
                )
        elif op == isa.LDDWR:
            if ins.imm >= max(len(program.rodata), 1) and ins.imm != 0:
                raise VerificationError(
                    f"lddwr immediate {ins.imm} outside .rodata section "
                    f"({len(program.rodata)} bytes)",
                    pc,
                )

    last = slots[last_pc]
    terminates = last.opcode == isa.EXIT or (
        last.opcode == isa.JA and last.offset < 0
    )
    if not terminates:
        raise VerificationError(
            "program may fall through its end (must finish with exit)", last_pc
        )
    return report


def _check_alu(ins, pc: int) -> None:
    """Immediate-operand sanity for ALU instructions."""
    op = ins.opcode & isa.OP_MASK
    is_imm = not ins.opcode & isa.SRC_X
    width = 64 if (ins.opcode & isa.CLS_MASK) == isa.CLS_ALU64 else 32
    if op in (isa.ALU_DIV, isa.ALU_MOD) and is_imm and ins.imm == 0:
        raise VerificationError("division by zero immediate", pc)
    if op in (isa.ALU_LSH, isa.ALU_RSH, isa.ALU_ARSH) and is_imm:
        if not 0 <= ins.imm < width:
            raise VerificationError(
                f"shift amount {ins.imm} out of range for {width}-bit op", pc
            )
    if op == isa.ALU_END and ins.imm not in (16, 32, 64):
        raise VerificationError(f"byteswap width {ins.imm} not in (16, 32, 64)", pc)
