"""Fluent programmatic builder for eBPF programs.

An alternative to the text assembler for tests and generated code::

    from repro.vm.builder import ProgramBuilder, R

    b = ProgramBuilder("double_input")
    b.ldxw(R(0), R(1), 0)       # r0 = *(u32 *)(r1 + 0)
    b.alu("add", R(0), R(0))    # r0 += r0
    b.exit_()
    program = b.build()

Registers are wrapped in :class:`R` so integer operands unambiguously mean
immediates.  Branch targets are labels created with :meth:`ProgramBuilder.label`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vm import isa
from repro.vm.errors import AssemblerError
from repro.vm.instruction import Instruction, make_wide
from repro.vm.program import Program


@dataclass(frozen=True)
class R:
    """A register operand (``R(3)`` is r3)."""

    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < 16:
            raise AssemblerError(f"register index out of range: {self.index}")


_ALU_OPS = {
    "add": isa.ALU_ADD, "sub": isa.ALU_SUB, "mul": isa.ALU_MUL,
    "div": isa.ALU_DIV, "or": isa.ALU_OR, "and": isa.ALU_AND,
    "lsh": isa.ALU_LSH, "rsh": isa.ALU_RSH, "mod": isa.ALU_MOD,
    "xor": isa.ALU_XOR, "mov": isa.ALU_MOV, "arsh": isa.ALU_ARSH,
}
_JMP_OPS = {
    "jeq": isa.JMP_JEQ, "jgt": isa.JMP_JGT, "jge": isa.JMP_JGE,
    "jset": isa.JMP_JSET, "jne": isa.JMP_JNE, "jsgt": isa.JMP_JSGT,
    "jsge": isa.JMP_JSGE, "jlt": isa.JMP_JLT, "jle": isa.JMP_JLE,
    "jslt": isa.JMP_JSLT, "jsle": isa.JMP_JSLE,
}
_SIZES = {1: isa.SZ_B, 2: isa.SZ_H, 4: isa.SZ_W, 8: isa.SZ_DW}


class _Fixup:
    __slots__ = ("slot_index", "label")

    def __init__(self, slot_index: int, label: str):
        self.slot_index = slot_index
        self.label = label


class ProgramBuilder:
    """Accumulates instruction slots and resolves labels at build time."""

    def __init__(self, name: str = "app", rodata: bytes = b"", data: bytes = b""):
        self.name = name
        self.rodata = rodata
        self.data = data
        self._slots: list[Instruction] = []
        self._labels: dict[str, int] = {}
        self._fixups: list[_Fixup] = []

    # -- structure -----------------------------------------------------------

    @property
    def pc(self) -> int:
        """Current slot index (where the next instruction lands)."""
        return len(self._slots)

    def label(self, name: str) -> "ProgramBuilder":
        """Define ``name`` at the current position."""
        if name in self._labels:
            raise AssemblerError(f"duplicate label {name!r}")
        self._labels[name] = self.pc
        return self

    def raw(self, ins: Instruction) -> "ProgramBuilder":
        self._slots.append(ins)
        return self

    # -- instructions ----------------------------------------------------------

    def alu(self, op: str, dst: R, operand: R | int,
            width: int = 64) -> "ProgramBuilder":
        if op not in _ALU_OPS:
            raise AssemblerError(f"unknown ALU op {op!r}")
        cls = isa.CLS_ALU64 if width == 64 else isa.CLS_ALU
        if isinstance(operand, R):
            self._slots.append(Instruction(cls | isa.SRC_X | _ALU_OPS[op],
                                           dst=dst.index, src=operand.index))
        else:
            self._slots.append(Instruction(cls | isa.SRC_K | _ALU_OPS[op],
                                           dst=dst.index, imm=operand))
        return self

    def mov(self, dst: R, operand: R | int, width: int = 64) -> "ProgramBuilder":
        return self.alu("mov", dst, operand, width)

    def add(self, dst: R, operand: R | int, width: int = 64) -> "ProgramBuilder":
        return self.alu("add", dst, operand, width)

    def sub(self, dst: R, operand: R | int, width: int = 64) -> "ProgramBuilder":
        return self.alu("sub", dst, operand, width)

    def neg(self, dst: R, width: int = 64) -> "ProgramBuilder":
        cls = isa.CLS_ALU64 if width == 64 else isa.CLS_ALU
        self._slots.append(Instruction(cls | isa.SRC_K | isa.ALU_NEG,
                                       dst=dst.index))
        return self

    def endian(self, kind: str, dst: R, width_bits: int) -> "ProgramBuilder":
        opcode = isa.LE if kind == "le" else isa.BE
        self._slots.append(Instruction(opcode, dst=dst.index, imm=width_bits))
        return self

    def lddw(self, dst: R, imm64: int) -> "ProgramBuilder":
        self._slots.extend(make_wide(isa.LDDW, dst.index, imm64))
        return self

    def lddwd(self, dst: R, offset: int = 0) -> "ProgramBuilder":
        self._slots.extend(make_wide(isa.LDDWD, dst.index, offset))
        return self

    def lddwr(self, dst: R, offset: int = 0) -> "ProgramBuilder":
        self._slots.extend(make_wide(isa.LDDWR, dst.index, offset))
        return self

    def load(self, dst: R, base: R, offset: int = 0, size: int = 8) -> "ProgramBuilder":
        self._slots.append(Instruction(isa.CLS_LDX | _SIZES[size] | isa.MODE_MEM,
                                       dst=dst.index, src=base.index,
                                       offset=offset))
        return self

    # Convenience width-specific loads/stores.
    def ldxb(self, dst: R, base: R, offset: int = 0): return self.load(dst, base, offset, 1)
    def ldxh(self, dst: R, base: R, offset: int = 0): return self.load(dst, base, offset, 2)
    def ldxw(self, dst: R, base: R, offset: int = 0): return self.load(dst, base, offset, 4)
    def ldxdw(self, dst: R, base: R, offset: int = 0): return self.load(dst, base, offset, 8)

    def store(self, base: R, offset: int, value: R | int,
              size: int = 8) -> "ProgramBuilder":
        if isinstance(value, R):
            self._slots.append(
                Instruction(isa.CLS_STX | _SIZES[size] | isa.MODE_MEM,
                            dst=base.index, src=value.index, offset=offset))
        else:
            self._slots.append(
                Instruction(isa.CLS_ST | _SIZES[size] | isa.MODE_MEM,
                            dst=base.index, offset=offset, imm=value))
        return self

    def stxb(self, base: R, offset: int, src: R): return self.store(base, offset, src, 1)
    def stxh(self, base: R, offset: int, src: R): return self.store(base, offset, src, 2)
    def stxw(self, base: R, offset: int, src: R): return self.store(base, offset, src, 4)
    def stxdw(self, base: R, offset: int, src: R): return self.store(base, offset, src, 8)

    def jump(self, label: str) -> "ProgramBuilder":
        self._fixups.append(_Fixup(self.pc, label))
        self._slots.append(Instruction(isa.JA))
        return self

    def branch(self, op: str, dst: R, operand: R | int, label: str,
               width: int = 64) -> "ProgramBuilder":
        if op not in _JMP_OPS:
            raise AssemblerError(f"unknown branch op {op!r}")
        cls = isa.CLS_JMP if width == 64 else isa.CLS_JMP32
        self._fixups.append(_Fixup(self.pc, label))
        if isinstance(operand, R):
            self._slots.append(Instruction(cls | isa.SRC_X | _JMP_OPS[op],
                                           dst=dst.index, src=operand.index))
        else:
            self._slots.append(Instruction(cls | isa.SRC_K | _JMP_OPS[op],
                                           dst=dst.index, imm=operand))
        return self

    def call(self, helper_id: int) -> "ProgramBuilder":
        self._slots.append(Instruction(isa.CALL, imm=helper_id))
        return self

    def exit_(self) -> "ProgramBuilder":
        self._slots.append(Instruction(isa.EXIT))
        return self

    # -- assembly ---------------------------------------------------------------

    def build(self) -> Program:
        """Resolve labels and produce the program."""
        slots = list(self._slots)
        for fixup in self._fixups:
            target = self._labels.get(fixup.label)
            if target is None:
                raise AssemblerError(f"undefined label {fixup.label!r}")
            ins = slots[fixup.slot_index]
            slots[fixup.slot_index] = Instruction(
                opcode=ins.opcode, dst=ins.dst, src=ins.src,
                offset=target - (fixup.slot_index + 1), imm=ins.imm,
            )
        return Program(slots=slots, rodata=self.rodata, data=self.data,
                       name=self.name, symbols=dict(self._labels))
