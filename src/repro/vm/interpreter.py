"""The rBPF / Femto-Container bytecode interpreter.

The interpreter mirrors the C implementation described in the paper §7:

* a register machine with eleven 64-bit registers; ``r10`` is a read-only
  pointer to the *beginning* of a 512-byte stack provided by the hosting
  engine;
* a computed-dispatch main loop driven by the **pre-decoded** slot table
  (:mod:`repro.vm.predecode`): every per-instruction fact — cost class,
  access width, masked immediate, resolved branch target — is flattened
  once per program, so the loop performs zero dict lookups per executed
  instruction;
* runtime memory-access checks of every computed load/store address against
  the access list (Fig. 4) — illegal access aborts execution;
* finite execution enforced by the N_b taken-branch budget (the program
  length itself is bounded by the verifier's N_i budget, so any execution
  runs at most N_i * N_b instructions).

Instruction accounting: the interpreter counts executed instructions per
:class:`~repro.vm.isa.InstructionKind` and helper invocations per id.  The
per-platform cycle models in :mod:`repro.rtos.board` translate those counts
into virtual clock ticks; the interpreter itself is time-agnostic, and the
accounting is **engine-independent** — the template JIT and the CertFC
build produce bit-identical :class:`ExecutionStats` for the same program.

Per-run state is reused across executions: the register file and the
zeroing template for the stack live on the instance, so a hosting engine
firing hooks at high rate does not reallocate VM state per event.  The
:class:`ExecutionStats` object returned by :meth:`Interpreter.run` is
always fresh (engines keep them in run histories), but its ``kind_counts``
dict is cloned from a prebuilt zero table instead of rebuilt key by key.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.vm import isa
from repro.vm.errors import (
    BranchLimitFault,
    DivisionFault,
    HelperFault,
    IllegalInstructionFault,
    VMFault,
)
from repro.vm.helpers import HelperRegistry
from repro.vm.memory import (
    CONTEXT_BASE,
    DATA_BASE,
    RODATA_BASE,
    STACK_BASE,
    AccessList,
    MemoryRegion,
    Permission,
)
from repro.vm.program import Program

_M64 = (1 << 64) - 1
_M32 = (1 << 32) - 1

#: opcode -> InstructionKind, kept for backward compatibility with external
#: tooling; the dispatch loop itself uses the pre-decoded ``kind`` field.
_KIND_OF = {op: isa.classify(op) for op in isa.VALID_OPCODES}


def _s64(value: int) -> int:
    """Reinterpret an unsigned 64-bit value as signed."""
    return value - (1 << 64) if value >= (1 << 63) else value


def _s32(value: int) -> int:
    """Reinterpret an unsigned 32-bit value as signed."""
    value &= _M32
    return value - (1 << 32) if value >= (1 << 31) else value


def _byteswap(value: int, width_bits: int) -> int:
    width_bytes = width_bits // 8
    return int.from_bytes(
        (value & ((1 << width_bits) - 1)).to_bytes(width_bytes, "little"), "big"
    )


@dataclass(frozen=True)
class VMConfig:
    """Runtime limits of one container execution."""

    #: N_b — taken branches allowed before the execution is aborted.
    branch_limit: int = 10_000
    #: Optional absolute cap on executed instructions (defense in depth;
    #: N_i * N_b already bounds execution when None).
    total_limit: int | None = None
    #: Size of the engine-provided stack (the eBPF spec mandates 512 B).
    stack_size: int = isa.STACK_SIZE


@dataclass
class ExecutionStats:
    """What one execution did, in platform-independent units."""

    executed: int = 0
    branches_taken: int = 0
    kind_counts: dict[str, int] = field(default_factory=dict)
    helper_calls: dict[int, int] = field(default_factory=dict)

    def merge(self, other: "ExecutionStats") -> None:
        self.executed += other.executed
        self.branches_taken += other.branches_taken
        for key, count in other.kind_counts.items():
            self.kind_counts[key] = self.kind_counts.get(key, 0) + count
        for key, count in other.helper_calls.items():
            self.helper_calls[key] = self.helper_calls.get(key, 0) + count


@dataclass
class ExecutionResult:
    """Return value and accounting of one container execution."""

    value: int
    stats: ExecutionStats

    @property
    def signed_value(self) -> int:
        return _s64(self.value)


#: Prebuilt zero table cloned into each run's ``kind_counts``.
_ZERO_KINDS = {kind: 0 for kind in isa.InstructionKind.ALL}


class Interpreter:
    """Baseline interpreter; also the base class for the CertFC variant.

    ``implementation`` tags which engine build this models ("rbpf" or
    "femto-containers"); the per-platform cost tables key on it.
    """

    implementation = "femto-containers"
    #: Extra per-instance RAM beyond registers+stack (housekeeping structs).
    housekeeping_bytes = 24

    def __init__(
        self,
        program: Program,
        helpers: HelperRegistry | None = None,
        config: VMConfig | None = None,
        access_list: AccessList | None = None,
    ) -> None:
        self.program = program
        self.helpers = helpers or HelperRegistry()
        self.config = config or VMConfig()
        self.access_list = access_list or AccessList()
        self.stack = MemoryRegion.zeroed(
            "stack", STACK_BASE, self.config.stack_size, Permission.READ_WRITE
        )
        self.access_list.add(self.stack)
        if program.rodata:
            self.access_list.grant_bytes(
                ".rodata", RODATA_BASE, program.rodata, Permission.READ
            )
        self.data_region: MemoryRegion | None = None
        if program.data:
            self.data_region = self.access_list.grant_bytes(
                ".data", DATA_BASE, program.data, Permission.READ_WRITE
            )
        self._context_region: MemoryRegion | None = None
        #: Opaque service object (the hosting engine) helpers may use.
        self.services = None
        # Reusable per-run state (see the module docstring).
        self._regs: list[int] = [0] * isa.REG_COUNT
        self._stack_zeros = bytes(self.config.stack_size)

    # -- engine-facing surface ---------------------------------------------

    @property
    def ram_bytes(self) -> int:
        """Per-instance RAM: registers + stack + housekeeping structs.

        11 registers x 8 B + 512 B stack + 24 B housekeeping = 624 B,
        matching the paper's per-instance figure (§10.3, Table 3).
        """
        return isa.REG_COUNT * 8 + self.config.stack_size + self.housekeeping_bytes

    def bind_context(
        self, content: bytes, perms: Permission = Permission.READ_WRITE
    ) -> MemoryRegion:
        """Map the hook context struct at the conventional address.

        Hook launchpads fire with identically-shaped context structs run
        after run (the scheduler hook packs the same 16 bytes on every
        context switch), so when the previously-bound region matches in
        size and permissions its backing buffer is overwritten in place:
        no region allocation, no access-list churn, and the MRU region
        cache stays warm across fires.  A shape or permission change
        falls back to the remap path.  The context region is only ever
        unmapped through this method, which is what keeps the in-place
        reuse sound.
        """
        region = self._context_region
        if (
            region is not None
            and region.perms == perms
            and region._end - region.start == len(content)
        ):
            region.data[:] = content
            return region
        if region is not None:
            self.access_list.remove(region)
        self._context_region = self.access_list.grant_bytes(
            "context", CONTEXT_BASE, content, perms
        )
        return self._context_region

    def context_bytes(self) -> bytes:
        """Snapshot of the (possibly VM-modified) context struct."""
        if self._context_region is None:
            return b""
        return bytes(self._context_region.data)

    # -- execution ----------------------------------------------------------

    def run(
        self, context: bytes | None = None,
        context_perms: Permission = Permission.READ_WRITE,
    ) -> ExecutionResult:
        """Execute the program once, from slot 0 until ``exit``.

        ``context`` (when given) is copied into the context region and its
        address passed in r1, mirroring the launchpad calling convention of
        Listing 1.  Faults propagate as :class:`VMFault` subclasses; the
        hosting engine is responsible for catching them.
        """
        if context is not None:
            self.bind_context(context, context_perms)
        # Fresh stack for each run: the engine hands out a zeroed stack.
        # One slice assignment from the prebuilt template, not a byte loop.
        self.stack.data[:] = self._stack_zeros

        regs = self._regs
        for i in range(isa.REG_COUNT):
            regs[i] = 0
        regs[isa.REG_STACK] = STACK_BASE
        if self._context_region is not None:
            regs[isa.REG_CTX] = CONTEXT_BASE

        stats = ExecutionStats(kind_counts=_ZERO_KINDS.copy())
        value = self._dispatch_loop(regs, stats)
        return ExecutionResult(value=value, stats=stats)

    # Hook for the CertFC defensive variant.
    def _pre_execute_check(self, ins, regs: list[int], pc: int) -> None:
        """Per-instruction defensive check; no-op in the optimized build."""

    def _dispatch_loop(self, regs: list[int], stats: ExecutionStats) -> int:
        decoded = self.program.decoded
        n_slots = len(decoded)
        access = self.access_list
        kind_counts = stats.kind_counts
        branch_limit = self.config.branch_limit
        total_limit = self.config.total_limit

        try:
            return self._execute(regs, stats, decoded, n_slots, access,
                                 kind_counts, branch_limit, total_limit)
        finally:
            # kind_counts is live-updated; derive the totals so that even a
            # faulted execution carries exact accounting (the engine charges
            # cycles for aborted runs too).
            stats.executed = sum(kind_counts.values())

    def _execute(self, regs, stats, decoded, n_slots, access, kind_counts,
                 branch_limit, total_limit) -> int:
        pc = 0
        executed = 0
        branches = 0
        load = access.load
        store = access.store
        # Subclasses (CertFC, tracing) hook every instruction; the optimized
        # build skips the callback entirely instead of calling a no-op.
        pre_check = None
        if type(self)._pre_execute_check is not Interpreter._pre_execute_check:
            pre_check = self._pre_execute_check

        CLS_ALU64 = isa.CLS_ALU64
        CLS_ALU = isa.CLS_ALU
        CLS_LDX = isa.CLS_LDX
        CLS_STX = isa.CLS_STX
        CLS_ST = isa.CLS_ST
        CLS_LD = isa.CLS_LD
        ALU_END = isa.ALU_END
        CALL = isa.CALL
        EXIT = isa.EXIT

        while True:
            if pc >= n_slots or pc < 0:
                raise VMFault("program counter escaped program text", pc)
            d = decoded[pc]
            kind = d.kind
            if kind is None:
                raise IllegalInstructionFault(
                    f"illegal opcode 0x{d.opcode:02x}", pc
                )
            if pre_check is not None:
                pre_check(d.ins, regs, pc)
            executed += 1
            kind_counts[kind] += 1
            if total_limit is not None and executed > total_limit:
                raise BranchLimitFault(
                    f"execution exceeded the total budget of {total_limit} "
                    "instructions",
                    pc,
                )

            cls = d.cls

            if cls == CLS_ALU64:
                regs[d.dst] = self._alu(
                    d.op, regs[d.dst],
                    regs[d.src] if d.use_reg else d.imm64,
                    pc, width64=True,
                )
                pc += 1
            elif cls == CLS_ALU:
                if d.op == ALU_END:
                    regs[d.dst] = self._endian(d.opcode, regs[d.dst], d.imm, pc)
                else:
                    operand = regs[d.src] if d.use_reg else d.imm
                    regs[d.dst] = self._alu(d.op, regs[d.dst] & _M32,
                                            operand & _M32, pc, width64=False)
                pc += 1
            elif cls == CLS_LDX:
                addr = (regs[d.src] + d.offset) & _M64
                regs[d.dst] = load(addr, d.size)
                pc += 1
            elif cls == CLS_STX:
                addr = (regs[d.dst] + d.offset) & _M64
                store(addr, d.size, regs[d.src])
                pc += 1
            elif cls == CLS_ST:
                addr = (regs[d.dst] + d.offset) & _M64
                store(addr, d.size, d.imm64)
                pc += 1
            elif cls == CLS_LD:
                value = d.wide_value
                if value is None:
                    raise IllegalInstructionFault("truncated wide instruction",
                                                  pc)
                regs[d.dst] = value
                pc += 2
            elif d.opcode == CALL:
                helper_id = d.imm
                stats.helper_calls[helper_id] = (
                    stats.helper_calls.get(helper_id, 0) + 1
                )
                try:
                    regs[0] = self.helpers.call(
                        self, helper_id,
                        regs[1], regs[2], regs[3], regs[4], regs[5],
                    )
                except VMFault:
                    raise
                except Exception as exc:  # contain helper implementation bugs
                    raise HelperFault(
                        f"helper 0x{helper_id:02x} failed: {exc}", pc
                    ) from exc
                pc += 1
            elif d.opcode == EXIT:
                return regs[0]
            else:  # CLS_JMP / CLS_JMP32 (the only remaining valid classes)
                if self._branch_taken(d, regs):
                    branches += 1
                    stats.branches_taken = branches
                    if branches > branch_limit:
                        raise BranchLimitFault(
                            f"taken-branch budget N_b={branch_limit} exhausted",
                            pc,
                        )
                    pc = d.target
                else:
                    pc += 1

    # -- instruction groups ---------------------------------------------------

    def _alu(self, op: int, dst: int, operand: int, pc: int,
             width64: bool) -> int:
        mask = _M64 if width64 else _M32
        if op == isa.ALU_ADD:
            result = dst + operand
        elif op == isa.ALU_SUB:
            result = dst - operand
        elif op == isa.ALU_MUL:
            result = dst * operand
        elif op == isa.ALU_DIV:
            if operand & mask == 0:
                raise DivisionFault("division by zero", pc)
            result = (dst & mask) // (operand & mask)
        elif op == isa.ALU_MOD:
            if operand & mask == 0:
                raise DivisionFault("modulo by zero", pc)
            result = (dst & mask) % (operand & mask)
        elif op == isa.ALU_OR:
            result = dst | operand
        elif op == isa.ALU_AND:
            result = dst & operand
        elif op == isa.ALU_XOR:
            result = dst ^ operand
        elif op == isa.ALU_LSH:
            result = dst << (operand & (63 if width64 else 31))
        elif op == isa.ALU_RSH:
            result = (dst & mask) >> (operand & (63 if width64 else 31))
        elif op == isa.ALU_ARSH:
            shift = operand & (63 if width64 else 31)
            signed = _s64(dst & _M64) if width64 else _s32(dst)
            result = signed >> shift
        elif op == isa.ALU_NEG:
            result = -dst
        elif op == isa.ALU_MOV:
            result = operand
        else:  # pragma: no cover - full opcode table handled above
            raise IllegalInstructionFault(f"unhandled ALU op 0x{op:02x}", pc)
        return result & mask

    def _endian(self, op: int, dst: int, width: int, pc: int) -> int:
        if width not in (16, 32, 64):
            raise IllegalInstructionFault(f"byteswap width {width}", pc)
        if op == isa.LE:
            # Host byte order in eBPF is little endian: `le` truncates.
            return dst & ((1 << width) - 1)
        return _byteswap(dst, width)

    def _branch_taken(self, d, regs: list[int]) -> bool:
        op = d.opcode
        if op == isa.JA:
            return True
        wide = d.cls == isa.CLS_JMP
        lhs = regs[d.dst]
        rhs = regs[d.src] if d.use_reg else d.imm64
        if not wide:
            lhs &= _M32
            rhs &= _M32
        kind = d.op
        if kind == isa.JMP_JEQ:
            return lhs == rhs
        if kind == isa.JMP_JNE:
            return lhs != rhs
        if kind == isa.JMP_JGT:
            return lhs > rhs
        if kind == isa.JMP_JGE:
            return lhs >= rhs
        if kind == isa.JMP_JLT:
            return lhs < rhs
        if kind == isa.JMP_JLE:
            return lhs <= rhs
        if kind == isa.JMP_JSET:
            return bool(lhs & rhs)
        signed = (_s64, _s32)[0 if wide else 1]
        slhs, srhs = signed(lhs), signed(rhs)
        if kind == isa.JMP_JSGT:
            return slhs > srhs
        if kind == isa.JMP_JSGE:
            return slhs >= srhs
        if kind == isa.JMP_JSLT:
            return slhs < srhs
        if kind == isa.JMP_JSLE:
            return slhs <= srhs
        raise IllegalInstructionFault(f"unhandled jump op 0x{op:02x}")


class RbpfInterpreter(Interpreter):
    """The original single-VM rBPF build (PEMWN'20 baseline)."""

    implementation = "rbpf"
    # rBPF keeps slightly less housekeeping (no hook/tenant bookkeeping).
    housekeeping_bytes = 20
