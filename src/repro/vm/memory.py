"""Virtual memory regions and the runtime access-list check (paper Fig. 4).

A Femto-Container instance sees a sparse virtual address space made of a
handful of :class:`MemoryRegion` objects: its stack, the hook context
struct, the program's ``.data``/``.rodata`` sections, and whatever extra
regions the hosting engine explicitly granted (for example a read-only view
of a network packet).  Every load and store executed by the VM resolves its
*computed* address against the :class:`AccessList`; anything outside the
granted regions aborts the execution with :class:`MemoryFault`.

Because this check guards every load and store the VM executes, it is the
hottest path of the whole simulator, and it is engineered accordingly:

* regions are kept **sorted by base address**, so :meth:`AccessList.find`
  resolves an address with one :func:`bisect.bisect_right` probe instead of
  a linear scan;
* a **most-recently-used region cache** short-circuits the common case —
  container loads and stores are overwhelmingly stack- or context-local, so
  consecutive accesses usually hit the same region.  The cache is
  invalidated whenever the region set changes (:meth:`AccessList.add` /
  :meth:`AccessList.remove`), including a ``bind_context`` remap;
* :meth:`MemoryRegion.load` / :meth:`MemoryRegion.store` use preallocated
  :class:`struct.Struct` packers over a ``memoryview`` of the backing
  buffer, so an access allocates no intermediate ``bytes`` slice.

None of this changes what is checked: the permission model and the
fault-at-the-boundary semantics are bit-identical to the reference linear
scan, and the accounting layers above never see the difference.
"""

from __future__ import annotations

import struct
from bisect import bisect_right
from dataclasses import dataclass, field
from enum import IntFlag

from repro.vm.errors import MemoryFault

# Conventional base addresses for the standard regions.  They only need to
# be distinct and far apart; the VM never maps real host memory.
STACK_BASE = 0x2000_0000
CONTEXT_BASE = 0x3000_0000
DATA_BASE = 0x4000_0000
RODATA_BASE = 0x5000_0000
GRANT_BASE = 0x6000_0000

#: access width -> (preallocated little-endian packer, value mask).
_PACKERS: dict[int, tuple[struct.Struct, int]] = {
    1: (struct.Struct("<B"), 0xFF),
    2: (struct.Struct("<H"), 0xFFFF),
    4: (struct.Struct("<I"), 0xFFFF_FFFF),
    8: (struct.Struct("<Q"), 0xFFFF_FFFF_FFFF_FFFF),
}

#: Same table as a dense tuple indexed by width, for the hot path.
_PACKERS_BY_SIZE: tuple[tuple[struct.Struct, int] | None, ...] = tuple(
    _PACKERS.get(size) for size in range(9)
)


class Permission(IntFlag):
    """Access rights attached to a region in the allow list."""

    NONE = 0
    READ = 1
    WRITE = 2
    READ_WRITE = READ | WRITE


@dataclass
class MemoryRegion:
    """A contiguous virtual region backed by a Python ``bytearray``."""

    name: str
    start: int
    data: bytearray
    perms: Permission

    def __post_init__(self) -> None:
        # Cached geometry and a zero-copy view for the struct packers.  The
        # backing bytearray must never be resized (regions are fixed-size
        # hardware-like mappings); the exported memoryview enforces that.
        # ``_perm_bits`` dodges IntFlag.__and__, which allocates an enum
        # instance per test; permissions are immutable after construction.
        self._end = self.start + len(self.data)
        self._view = memoryview(self.data)
        self._perm_bits = int(self.perms)

    @classmethod
    def from_bytes(
        cls, name: str, start: int, content: bytes, perms: Permission
    ) -> "MemoryRegion":
        return cls(name=name, start=start, data=bytearray(content), perms=perms)

    @classmethod
    def zeroed(
        cls, name: str, start: int, size: int, perms: Permission
    ) -> "MemoryRegion":
        return cls(name=name, start=start, data=bytearray(size), perms=perms)

    @property
    def size(self) -> int:
        return len(self.data)

    @property
    def end(self) -> int:
        """One past the last valid address."""
        return self._end

    def contains(self, addr: int, size: int) -> bool:
        """True when ``[addr, addr+size)`` lies fully inside the region."""
        return self.start <= addr and addr + size <= self._end

    def load(self, addr: int, size: int) -> int:
        """Read ``size`` bytes at ``addr`` as an unsigned little-endian int."""
        entry = _PACKERS.get(size)
        if entry is not None:
            return entry[0].unpack_from(self._view, addr - self.start)[0]
        off = addr - self.start
        return int.from_bytes(self.data[off : off + size], "little")

    def store(self, addr: int, size: int, value: int) -> None:
        """Write ``value`` as ``size`` little-endian bytes at ``addr``."""
        entry = _PACKERS.get(size)
        if entry is not None:
            entry[0].pack_into(self._view, addr - self.start, value & entry[1])
            return
        off = addr - self.start
        self.data[off : off + size] = (value & ((1 << (8 * size)) - 1)).to_bytes(
            size, "little"
        )

    def read_bytes(self, addr: int, size: int) -> bytes:
        off = addr - self.start
        return bytes(self.data[off : off + size])

    def write_bytes(self, addr: int, payload: bytes) -> None:
        off = addr - self.start
        self.data[off : off + len(payload)] = payload


@dataclass
class AccessList:
    """The allow list of Fig. 4: the only memory a container may touch.

    ``regions`` is kept sorted by base address (regions are disjoint, so
    the order is total); mutate it only through :meth:`add` and
    :meth:`remove` so the bisect index and the MRU cache stay coherent.
    """

    regions: list[MemoryRegion] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.regions.sort(key=lambda region: region.start)
        self._starts = [region.start for region in self.regions]
        self._mru: MemoryRegion | None = None

    # -- region-set maintenance -------------------------------------------

    def _resync(self) -> None:
        """Re-derive the index after a detected out-of-band mutation."""
        self.regions.sort(key=lambda region: region.start)
        self._starts = [region.start for region in self.regions]
        self._mru = None

    def add(self, region: MemoryRegion) -> MemoryRegion:
        """Grant access to ``region``; returns it for chaining."""
        if len(self._starts) != len(self.regions):  # defensive resync
            self._resync()
        index = bisect_right(self._starts, region.start)
        if index > 0 and self.regions[index - 1].end > region.start:
            raise ValueError(
                f"region {region.name!r} overlaps {self.regions[index - 1].name!r}"
            )
        if index < len(self.regions) and region.end > self.regions[index].start:
            raise ValueError(
                f"region {region.name!r} overlaps {self.regions[index].name!r}"
            )
        self.regions.insert(index, region)
        self._starts.insert(index, region.start)
        self._mru = None
        return region

    def remove(self, region: MemoryRegion) -> bool:
        """Revoke a grant; returns False when the region was not present."""
        try:
            index = self.regions.index(region)
        except ValueError:
            return False
        del self.regions[index]
        if index < len(self._starts):
            del self._starts[index]
        else:  # pragma: no cover - only after out-of-band mutation
            self._resync()
        self._mru = None
        return True

    def grant_bytes(
        self, name: str, start: int, content: bytes, perms: Permission
    ) -> MemoryRegion:
        return self.add(MemoryRegion.from_bytes(name, start, content, perms))

    # -- the runtime check (hot path) -------------------------------------

    def find(self, addr: int, size: int, write: bool) -> MemoryRegion:
        """Resolve a checked access; raises :class:`MemoryFault` on denial.

        This is the hot path of the memory-protection system: the address is
        the *computed* runtime address (register + offset), so the check
        cannot be hoisted to verification time.  An MRU hit skips the bisect
        entirely; permissions are re-checked on every resolution.
        """
        region = self._mru
        if region is None or not (
            region.start <= addr and addr + size <= region._end
        ):
            starts = self._starts
            if len(starts) != len(self.regions):  # defensive resync
                self._resync()
                starts = self._starts
            index = bisect_right(starts, addr) - 1
            region = self.regions[index] if index >= 0 else None
            if region is None or addr + size > region._end:
                raise MemoryFault(
                    f"{'write' if write else 'read'} of {size} B at "
                    f"0x{addr:08x} outside all granted regions"
                )
            self._mru = region
        needed = Permission.WRITE if write else Permission.READ
        if region._perm_bits & needed:
            return region
        raise MemoryFault(
            f"{'write' if write else 'read'} of {size} B at "
            f"0x{addr:08x} denied: region {region.name!r} lacks "
            f"{needed.name} permission"
        )

    def load(self, addr: int, size: int) -> int:
        # Inlined MRU + packer fast path: one VM load is one call frame.
        region = self._mru
        if (region is not None and region.start <= addr
                and addr + size <= region._end and region._perm_bits & 1):
            entry = _PACKERS_BY_SIZE[size] if size < 9 else None
            if entry is not None:
                return entry[0].unpack_from(region._view, addr - region.start)[0]
        return self.find(addr, size, False).load(addr, size)

    def store(self, addr: int, size: int, value: int) -> None:
        region = self._mru
        if (region is not None and region.start <= addr
                and addr + size <= region._end and region._perm_bits & 2):
            entry = _PACKERS_BY_SIZE[size] if size < 9 else None
            if entry is not None:
                entry[0].pack_into(region._view, addr - region.start,
                                   value & entry[1])
                return
        self.find(addr, size, True).store(addr, size, value)

    def read_bytes(self, addr: int, size: int) -> bytes:
        """Checked bulk read used by helpers that take VM pointers."""
        if size == 0:
            return b""
        return self.find(addr, size, False).read_bytes(addr, size)

    def write_bytes(self, addr: int, payload: bytes) -> None:
        """Checked bulk write used by helpers that fill VM buffers."""
        if not payload:
            return
        self.find(addr, len(payload), True).write_bytes(addr, payload)

    def read_cstring(self, addr: int, max_len: int = 256) -> bytes:
        """Read a NUL-terminated string, fully checked, region by region.

        Helpers that take string pointers (``bpf_printf``) use this.  The
        containing region is resolved once and then scanned in place — not
        re-resolved per byte — but the semantics are unchanged: a string
        running off the end of a granted region faults exactly at the
        boundary (unless an adjacent granted region continues it), like
        the byte-wise walk of the C runtime.
        """
        out = bytearray()
        remaining = max_len
        while remaining > 0:
            region = self.find(addr, 1, False)
            data = region.data
            offset = addr - region.start
            window = min(len(data), offset + remaining)
            nul = data.find(b"\x00", offset, window)
            if nul >= 0:
                out += data[offset:nul]
                return bytes(out)
            out += data[offset:window]
            consumed = window - offset
            remaining -= consumed
            addr += consumed
        return bytes(out)

    def ram_bytes(self) -> int:
        """Total backing RAM of all granted regions (for accounting)."""
        return sum(region.size for region in self.regions)
