"""Virtual memory regions and the runtime access-list check (paper Fig. 4).

A Femto-Container instance sees a sparse virtual address space made of a
handful of :class:`MemoryRegion` objects: its stack, the hook context
struct, the program's ``.data``/``.rodata`` sections, and whatever extra
regions the hosting engine explicitly granted (for example a read-only view
of a network packet).  Every load and store executed by the VM resolves its
*computed* address against the :class:`AccessList`; anything outside the
granted regions aborts the execution with :class:`MemoryFault`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntFlag

from repro.vm.errors import MemoryFault

# Conventional base addresses for the standard regions.  They only need to
# be distinct and far apart; the VM never maps real host memory.
STACK_BASE = 0x2000_0000
CONTEXT_BASE = 0x3000_0000
DATA_BASE = 0x4000_0000
RODATA_BASE = 0x5000_0000
GRANT_BASE = 0x6000_0000


class Permission(IntFlag):
    """Access rights attached to a region in the allow list."""

    NONE = 0
    READ = 1
    WRITE = 2
    READ_WRITE = READ | WRITE


@dataclass
class MemoryRegion:
    """A contiguous virtual region backed by a Python ``bytearray``."""

    name: str
    start: int
    data: bytearray
    perms: Permission

    @classmethod
    def from_bytes(
        cls, name: str, start: int, content: bytes, perms: Permission
    ) -> "MemoryRegion":
        return cls(name=name, start=start, data=bytearray(content), perms=perms)

    @classmethod
    def zeroed(
        cls, name: str, start: int, size: int, perms: Permission
    ) -> "MemoryRegion":
        return cls(name=name, start=start, data=bytearray(size), perms=perms)

    @property
    def size(self) -> int:
        return len(self.data)

    @property
    def end(self) -> int:
        """One past the last valid address."""
        return self.start + len(self.data)

    def contains(self, addr: int, size: int) -> bool:
        """True when ``[addr, addr+size)`` lies fully inside the region."""
        return self.start <= addr and addr + size <= self.end

    def load(self, addr: int, size: int) -> int:
        """Read ``size`` bytes at ``addr`` as an unsigned little-endian int."""
        off = addr - self.start
        return int.from_bytes(self.data[off : off + size], "little")

    def store(self, addr: int, size: int, value: int) -> None:
        """Write ``value`` as ``size`` little-endian bytes at ``addr``."""
        off = addr - self.start
        self.data[off : off + size] = (value & ((1 << (8 * size)) - 1)).to_bytes(
            size, "little"
        )

    def read_bytes(self, addr: int, size: int) -> bytes:
        off = addr - self.start
        return bytes(self.data[off : off + size])

    def write_bytes(self, addr: int, payload: bytes) -> None:
        off = addr - self.start
        self.data[off : off + len(payload)] = payload


@dataclass
class AccessList:
    """The allow list of Fig. 4: the only memory a container may touch."""

    regions: list[MemoryRegion] = field(default_factory=list)

    def add(self, region: MemoryRegion) -> MemoryRegion:
        """Grant access to ``region``; returns it for chaining."""
        for existing in self.regions:
            if region.start < existing.end and existing.start < region.end:
                raise ValueError(
                    f"region {region.name!r} overlaps {existing.name!r}"
                )
        self.regions.append(region)
        return region

    def grant_bytes(
        self, name: str, start: int, content: bytes, perms: Permission
    ) -> MemoryRegion:
        return self.add(MemoryRegion.from_bytes(name, start, content, perms))

    def find(self, addr: int, size: int, write: bool) -> MemoryRegion:
        """Resolve a checked access; raises :class:`MemoryFault` on denial.

        This is the hot path of the memory-protection system: the address is
        the *computed* runtime address (register + offset), so the check
        cannot be hoisted to verification time.
        """
        needed = Permission.WRITE if write else Permission.READ
        for region in self.regions:
            if region.contains(addr, size):
                if region.perms & needed:
                    return region
                raise MemoryFault(
                    f"{'write' if write else 'read'} of {size} B at "
                    f"0x{addr:08x} denied: region {region.name!r} lacks "
                    f"{needed.name} permission"
                )
        raise MemoryFault(
            f"{'write' if write else 'read'} of {size} B at 0x{addr:08x} "
            "outside all granted regions"
        )

    def load(self, addr: int, size: int) -> int:
        return self.find(addr, size, write=False).load(addr, size)

    def store(self, addr: int, size: int, value: int) -> None:
        self.find(addr, size, write=True).store(addr, size, value)

    def read_bytes(self, addr: int, size: int) -> bytes:
        """Checked bulk read used by helpers that take VM pointers."""
        if size == 0:
            return b""
        return self.find(addr, size, write=False).read_bytes(addr, size)

    def write_bytes(self, addr: int, payload: bytes) -> None:
        """Checked bulk write used by helpers that fill VM buffers."""
        if not payload:
            return
        self.find(addr, len(payload), write=True).write_bytes(addr, payload)

    def read_cstring(self, addr: int, max_len: int = 256) -> bytes:
        """Read a NUL-terminated string, byte by byte, fully checked.

        Helpers that take string pointers (``bpf_printf``) use this; the
        byte-wise walk means a string running off the end of a granted
        region faults exactly at the boundary, like the C runtime.
        """
        out = bytearray()
        for i in range(max_len):
            byte = self.load(addr + i, 1)
            if byte == 0:
                break
            out.append(byte)
        return bytes(out)

    def ram_bytes(self) -> int:
        """Total backing RAM of all granted regions (for accounting)."""
        return sum(region.size for region in self.regions)
