"""Exception hierarchy for the Femto-Container virtual machine.

Faults raised while a container runs are *contained*: the hosting engine
catches :class:`VMFault` subclasses, aborts the single container execution
and reports the fault without ever propagating it into the host RTOS — this
is the fault-isolation contract the paper verifies formally.
"""

from __future__ import annotations


class VMError(Exception):
    """Base class for everything the VM subsystem raises."""


class EncodingError(VMError):
    """Malformed binary or textual instruction encoding."""


class AssemblerError(VMError):
    """Error while assembling eBPF text source."""


class VerificationError(VMError):
    """The pre-flight checker rejected the application.

    Carries the slot index of the offending instruction when applicable.
    """

    def __init__(self, message: str, pc: int | None = None):
        super().__init__(message if pc is None else f"[pc={pc}] {message}")
        self.pc = pc


class VMFault(VMError):
    """Base class for runtime faults that abort a container execution."""

    def __init__(self, message: str, pc: int | None = None):
        super().__init__(message if pc is None else f"[pc={pc}] {message}")
        self.pc = pc


class MemoryFault(VMFault):
    """Load/store outside the regions granted by the access list (Fig. 4)."""


class DivisionFault(VMFault):
    """Division or modulo by zero at runtime."""


class IllegalInstructionFault(VMFault):
    """Opcode not handled at runtime (defense in depth after verification)."""


class BranchLimitFault(VMFault):
    """The N_b taken-branch budget was exhausted (finite-execution bound)."""


class HelperFault(VMFault):
    """A helper call failed or referenced an unknown/forbidden helper id."""
