"""Instruction representation and binary codec for the eBPF bytecode."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.vm import isa
from repro.vm.errors import EncodingError

#: struct layout of one 8-byte instruction slot (little endian):
#: opcode u8, regs u8 (dst low nibble / src high nibble), offset i16, imm i32.
_SLOT = struct.Struct("<BBhi")

#: Size in bytes of one instruction slot.
SLOT_SIZE = 8


@dataclass(frozen=True)
class Instruction:
    """One 8-byte eBPF instruction slot.

    Wide (two-slot) instructions such as ``lddw`` are represented as the
    first slot carrying the low 32 bits of the immediate, followed by a
    continuation slot (opcode 0) carrying the high 32 bits, exactly as in
    the binary format.  Helpers below assemble/disassemble the pairs.
    """

    opcode: int
    dst: int = 0
    src: int = 0
    offset: int = 0
    imm: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.opcode <= 0xFF:
            raise EncodingError(f"opcode out of range: {self.opcode}")
        if not 0 <= self.dst <= 0xF or not 0 <= self.src <= 0xF:
            raise EncodingError(
                f"register field out of range: dst={self.dst} src={self.src}"
            )
        if not -(1 << 15) <= self.offset < (1 << 15):
            raise EncodingError(f"offset out of range: {self.offset}")
        if not -(1 << 31) <= self.imm < (1 << 32):
            raise EncodingError(f"immediate out of range: {self.imm}")

    @property
    def name(self) -> str:
        """Canonical mnemonic, or ``data`` for continuation slots."""
        return isa.OPCODE_NAMES.get(self.opcode, "data")

    @property
    def is_wide(self) -> bool:
        """True when this slot starts a two-slot instruction."""
        return self.opcode in isa.WIDE_OPCODES

    def encode(self) -> bytes:
        """Encode this slot into its 8-byte binary form."""
        imm = self.imm
        if imm >= 1 << 31:  # allow unsigned 32-bit immediates on input
            imm -= 1 << 32
        return _SLOT.pack(self.opcode, (self.src << 4) | self.dst, self.offset, imm)

    @classmethod
    def decode(cls, raw: bytes | memoryview, index: int = 0) -> "Instruction":
        """Decode the 8-byte slot starting at ``index * 8``."""
        opcode, regs, offset, imm = _SLOT.unpack_from(raw, index * SLOT_SIZE)
        return cls(opcode=opcode, dst=regs & 0xF, src=regs >> 4, offset=offset, imm=imm)


def make_wide(opcode: int, dst: int, imm64: int, src: int = 0) -> tuple[Instruction, Instruction]:
    """Build the two slots of a wide (64-bit immediate) instruction."""
    if opcode not in isa.WIDE_OPCODES:
        raise EncodingError(f"opcode 0x{opcode:02x} is not a wide instruction")
    if imm64 < 0:
        imm64 &= (1 << 64) - 1
    if imm64 >= 1 << 64:
        raise EncodingError(f"64-bit immediate out of range: {imm64}")
    low = imm64 & 0xFFFFFFFF
    high = (imm64 >> 32) & 0xFFFFFFFF
    return (
        Instruction(opcode=opcode, dst=dst, src=src, imm=low),
        Instruction(opcode=0, imm=high),
    )


def wide_imm64(first: Instruction, second: Instruction) -> int:
    """Recombine the 64-bit immediate of a wide instruction pair."""
    low = first.imm & 0xFFFFFFFF
    high = second.imm & 0xFFFFFFFF
    return (high << 32) | low


def encode_program(slots: list[Instruction]) -> bytes:
    """Encode a list of instruction slots into flat bytecode."""
    return b"".join(slot.encode() for slot in slots)


def decode_program(raw: bytes) -> list[Instruction]:
    """Decode flat bytecode into instruction slots.

    Raises :class:`EncodingError` when the text length is not a whole number
    of slots; individual opcodes are *not* validated here (that is the
    verifier's job, mirroring the C implementation's split between loader
    and pre-flight checker).
    """
    if len(raw) % SLOT_SIZE != 0:
        raise EncodingError(
            f"bytecode length {len(raw)} is not a multiple of {SLOT_SIZE}"
        )
    # One pass over the image with a preallocated Struct iterator instead of
    # a fresh unpack_from per slot; images are decoded on every SUIT install.
    return [
        Instruction(opcode=opcode, dst=regs & 0xF, src=regs >> 4,
                    offset=offset, imm=imm)
        for opcode, regs, offset, imm in _SLOT.iter_unpack(raw)
    ]
