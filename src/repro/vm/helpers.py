"""Helper (system call) registry exposed to Femto-Container applications.

Applications escape the sandbox only through the eBPF ``call`` instruction.
Each helper has a numeric id (the ``call`` immediate), a name, and a *cost
key* used by the per-platform cycle models to charge realistic syscall
costs.  The concrete helper implementations that bridge into the RTOS live
in :mod:`repro.core.syscalls`; this module only defines the registry
machinery and the stable id assignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TYPE_CHECKING

from repro.vm.errors import HelperFault

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.vm.interpreter import Interpreter


# Stable helper id assignment (mirrors the femto-containers bpfapi layout).
BPF_PRINTF = 0x01
BPF_MEMCPY = 0x02
BPF_STORE_LOCAL = 0x10
BPF_STORE_GLOBAL = 0x11
BPF_FETCH_LOCAL = 0x12
BPF_FETCH_GLOBAL = 0x13
BPF_STORE_TENANT = 0x14
BPF_FETCH_TENANT = 0x15
BPF_NOW_MS = 0x20
BPF_SAUL_REG_FIND_NTH = 0x30
BPF_SAUL_REG_FIND_TYPE = 0x31
BPF_SAUL_REG_READ = 0x32
BPF_SAUL_REG_WRITE = 0x33
BPF_GCOAP_RESP_INIT = 0x40
BPF_COAP_OPT_FINISH = 0x41
BPF_COAP_ADD_FORMAT = 0x42
BPF_COAP_GET_PDU = 0x43
BPF_FMT_S16_DFP = 0x50
BPF_FMT_U32_DEC = 0x51
BPF_ZTIMER_NOW = 0x60
BPF_ZTIMER_PERIODIC_WAKEUP = 0x61

HELPER_NAMES = {
    BPF_PRINTF: "bpf_printf",
    BPF_MEMCPY: "bpf_memcpy",
    BPF_STORE_LOCAL: "bpf_store_local",
    BPF_STORE_GLOBAL: "bpf_store_global",
    BPF_FETCH_LOCAL: "bpf_fetch_local",
    BPF_FETCH_GLOBAL: "bpf_fetch_global",
    BPF_STORE_TENANT: "bpf_store_tenant",
    BPF_FETCH_TENANT: "bpf_fetch_tenant",
    BPF_NOW_MS: "bpf_now_ms",
    BPF_SAUL_REG_FIND_NTH: "bpf_saul_reg_find_nth",
    BPF_SAUL_REG_FIND_TYPE: "bpf_saul_reg_find_type",
    BPF_SAUL_REG_READ: "bpf_saul_reg_read",
    BPF_SAUL_REG_WRITE: "bpf_saul_reg_write",
    BPF_GCOAP_RESP_INIT: "bpf_gcoap_resp_init",
    BPF_COAP_OPT_FINISH: "bpf_coap_opt_finish",
    BPF_COAP_ADD_FORMAT: "bpf_coap_add_format",
    BPF_COAP_GET_PDU: "bpf_coap_get_pdu",
    BPF_FMT_S16_DFP: "bpf_fmt_s16_dfp",
    BPF_FMT_U32_DEC: "bpf_fmt_u32_dec",
    BPF_ZTIMER_NOW: "bpf_ztimer_now",
    BPF_ZTIMER_PERIODIC_WAKEUP: "bpf_ztimer_periodic_wakeup",
}

#: name -> id lookup used by the assembler (``call bpf_fetch_global``).
HELPER_IDS = {name: hid for hid, name in HELPER_NAMES.items()}

#: Helper function signature: (vm, r1, r2, r3, r4, r5) -> r0.
HelperFn = Callable[["Interpreter", int, int, int, int, int], int]


@dataclass(frozen=True)
class Helper:
    """A registered system call."""

    helper_id: int
    name: str
    fn: HelperFn
    #: Key into the board syscall-cost table ("kv", "saul", "coap", "fmt",
    #: "time", "trace", "mem").
    cost_key: str = "trace"


class HelperRegistry:
    """The set of helpers a hosting engine exposes to its containers."""

    def __init__(self) -> None:
        self._helpers: dict[int, Helper] = {}

    def register(self, helper_id: int, fn: HelperFn, name: str | None = None,
                 cost_key: str = "trace") -> Helper:
        """Register ``fn`` under ``helper_id``; replaces any previous entry."""
        helper = Helper(
            helper_id=helper_id,
            name=name or HELPER_NAMES.get(helper_id, f"helper_0x{helper_id:02x}"),
            fn=fn,
            cost_key=cost_key,
        )
        self._helpers[helper_id] = helper
        return helper

    def lookup(self, helper_id: int) -> Helper:
        helper = self._helpers.get(helper_id)
        if helper is None:
            raise HelperFault(f"unknown helper id 0x{helper_id:02x}")
        return helper

    def call(self, vm: "Interpreter", helper_id: int,
             r1: int, r2: int, r3: int, r4: int, r5: int) -> int:
        helper = self.lookup(helper_id)
        result = helper.fn(vm, r1, r2, r3, r4, r5)
        return 0 if result is None else int(result) & 0xFFFFFFFFFFFFFFFF

    def ids(self) -> frozenset[int]:
        return frozenset(self._helpers)

    def cost_key(self, helper_id: int) -> str:
        return self.lookup(helper_id).cost_key

    def __contains__(self, helper_id: int) -> bool:
        return helper_id in self._helpers

    def __len__(self) -> int:
        return len(self._helpers)
