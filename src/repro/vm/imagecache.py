"""Process-wide program-image cache: share verify/JIT work across instances.

The paper charges verification and §11 transpilation once per *attach*,
and that stays true for the **virtual clock** — the hosting engine keeps
charging the full per-slot verify cost (plus the per-slot JIT install
cost) on every attach, exactly as the evaluation models it.  What this
module changes is the **wall-clock** story of the simulator itself: under
the north-star workload, many tenants attach many instances of the *same*
application image, and rBPF / TinyContainer both treat that image as the
immutable unit of deployment.  Immutability is what makes the expensive
install-time artifacts shareable:

* the **pre-decoded slot table** (:mod:`repro.vm.predecode`) depends only
  on the image bytes;
* a **verification result** depends only on the image bytes and the
  :class:`~repro.vm.verifier.VerifierConfig` it ran under (different
  contracts can grant different helper sets, so the config is part of the
  cache key — a container must never inherit a more permissive verdict
  than its own contract allows);
* the JIT's compiled ``_fc_main`` **template** depends only on the image
  bytes and the ``total_limit`` budget baked into the generated code.
  The template itself is pure: all per-run state (registers, memory
  access list, stats, helper trampoline, branch budget) is passed in as
  arguments, so one compiled function object can serve every container
  instance — and every hosting engine — on the board.

Keys are content hashes (:attr:`~repro.vm.program.Program.image_hash`),
so there is nothing to invalidate on hot replace: a new program version
hashes to a new key, and stale images simply age out of the bounded LRU.
``invalidate``/``clear`` exist for tooling and benchmarks that need a
cold cache on demand.

The cache is deliberately **not** part of the modelled device: it holds
host-side Python objects, never touches the virtual clock, and the
differential tests assert that executions through shared artifacts stay
bit-identical to cold-built ones.  The simulator is single-threaded per
process, so plain dicts suffice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, TYPE_CHECKING

from repro.vm.predecode import Decoded, predecode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.vm.program import Program
    from repro.vm.verifier import VerificationReport, VerifierConfig

_MISS = object()


@dataclass
class CompiledTemplate:
    """One image's shared JIT artifact (see :mod:`repro.vm.jit`).

    ``entry`` is the compiled ``_fc_main`` function; it closes over
    nothing per-instance and may be shared freely.  ``source`` is kept
    for introspection (``CompiledProgram.jit_source``) and the install
    cost model keys on ``install_instruction_count``.
    """

    source: str
    entry: Callable
    install_instruction_count: int


class ImageCache:
    """Bounded LRU cache of per-image install artifacts, keyed by hash."""

    def __init__(self, max_entries: int = 256) -> None:
        self.max_entries = max_entries
        self._decoded: dict[str, list[Decoded]] = {}
        self._reports: dict[tuple[str, "VerifierConfig"], "VerificationReport"] = {}
        self._templates: dict[tuple[str, int | None], CompiledTemplate] = {}
        self.hits = 0
        self.misses = 0

    # -- generic bounded-LRU plumbing --------------------------------------

    def _get(self, table: dict, key) -> Any:
        value = table.pop(key, _MISS)
        if value is _MISS:
            self.misses += 1
            return _MISS
        table[key] = value  # reinsert: dict order doubles as LRU order
        self.hits += 1
        return value

    def _put(self, table: dict, key, value) -> None:
        table[key] = value
        while len(table) > self.max_entries:
            table.pop(next(iter(table)))

    # -- the three shared artifacts ----------------------------------------

    def decoded(self, program: "Program") -> list[Decoded]:
        """Pre-decoded slot table, computed once per image *content*."""
        key = program.image_hash
        value = self._get(self._decoded, key)
        if value is _MISS:
            value = predecode(program.slots)
            self._put(self._decoded, key, value)
        return value

    def verify(
        self, program: "Program", config: "VerifierConfig | None" = None
    ) -> "VerificationReport":
        """Pre-flight check through the cache.

        The returned :class:`VerificationReport` is shared between all
        instances of the image and must be treated as immutable.  Only
        successful verdicts are cached: a rejected image re-raises its
        :class:`VerificationError` on every attempt (rejections are cold
        paths and caching them would pin attacker-controlled keys).
        """
        # Lazy import: program.py imports this module at load time, and
        # verifier.py imports program.py — resolving verify() here keeps
        # the module graph acyclic.
        from repro.vm.verifier import VerifierConfig, verify

        if config is None:
            config = VerifierConfig()
        key = (program.image_hash, config)
        report = self._get(self._reports, key)
        if report is _MISS:
            report = verify(program, config)
            self._put(self._reports, key, report)
        return report

    def template(
        self,
        program: "Program",
        total_limit: int | None,
        build: Callable[["Program", int | None], CompiledTemplate],
    ) -> CompiledTemplate:
        """Shared JIT template for one (image, total-budget) pair.

        ``build`` is only invoked on a miss.  Callers must have verified
        the image first (the generated code relies on the verifier's
        guarantees); :class:`~repro.vm.jit.CompiledProgram` enforces that
        ordering.
        """
        key = (program.image_hash, total_limit)
        template = self._get(self._templates, key)
        if template is _MISS:
            template = build(program, total_limit)
            self._put(self._templates, key, template)
        return template

    # -- maintenance --------------------------------------------------------

    def invalidate(self, image_hash: str) -> None:
        """Drop every artifact derived from one image (tooling hook)."""
        self._decoded.pop(image_hash, None)
        for table in (self._reports, self._templates):
            for key in [k for k in table if k[0] == image_hash]:
                del table[key]

    def clear(self) -> None:
        self._decoded.clear()
        self._reports.clear()
        self._templates.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "decoded_entries": len(self._decoded),
            "report_entries": len(self._reports),
            "template_entries": len(self._templates),
        }


#: The process-wide cache: one per board-simulating process, shared by
#: every hosting engine (images are content-addressed, so sharing across
#: engines is safe by construction).
IMAGE_CACHE = ImageCache()
