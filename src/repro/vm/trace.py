"""Execution tracing — debug tooling for container development.

The paper's use-case 2 is on-demand debug and inspection code; developing
such containers needs visibility into what the VM does.  The
:class:`TracingInterpreter` records one :class:`TraceEntry` per executed
instruction (pc, mnemonic, the register it changed), bounded by
``max_entries`` so a runaway program cannot exhaust host memory.

Tracing is a host-side development tool: it never ships to the device, so
it deliberately subclasses the optimized interpreter rather than adding a
flag to its hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.vm import isa
from repro.vm.disasm import disassemble_instruction
from repro.vm.interpreter import Interpreter


@dataclass(frozen=True)
class TraceEntry:
    """One executed instruction."""

    index: int
    pc: int
    text: str
    #: Register written by this instruction, if any, and its new value
    #: (observed *after* the following instruction starts, i.e. lazily).
    touched: int | None = None
    value: int = 0


@dataclass
class Trace:
    """A bounded execution trace."""

    entries: list[TraceEntry] = field(default_factory=list)
    truncated: bool = False

    def __len__(self) -> int:
        return len(self.entries)

    def format(self, limit: int | None = None) -> str:
        lines = [
            f"{entry.index:6d}  pc={entry.pc:4d}  {entry.text}"
            + (f"   ; r{entry.touched} <- 0x{entry.value:x}"
               if entry.touched is not None else "")
            for entry in (self.entries if limit is None
                          else self.entries[:limit])
        ]
        if self.truncated:
            lines.append("  ... trace truncated ...")
        return "\n".join(lines)


class TracingInterpreter(Interpreter):
    """Interpreter variant that records everything it executes."""

    implementation = "femto-containers"

    def __init__(self, *args, max_entries: int = 10_000, **kwargs):
        super().__init__(*args, **kwargs)
        self.max_entries = max_entries
        self.trace = Trace()

    def run(self, *args, **kwargs):
        self.trace = Trace()
        return super().run(*args, **kwargs)

    def _pre_execute_check(self, ins, regs: list[int], pc: int) -> None:
        trace = self.trace
        if len(trace.entries) >= self.max_entries:
            trace.truncated = True
            return
        # Resolve the wide pair for display when needed.
        second = None
        if ins.opcode in isa.WIDE_OPCODES:
            second = self.program.slots[pc + 1]
        touched: int | None = None
        if ins.opcode in isa.REGISTER_WRITE_OPCODES:
            touched = ins.dst
        elif ins.opcode == isa.CALL:
            touched = 0
        # Record the *previous* entry's observed result now that the
        # destination register holds it.
        if trace.entries:
            last = trace.entries[-1]
            if last.touched is not None and last.value == 0:
                trace.entries[-1] = TraceEntry(
                    index=last.index, pc=last.pc, text=last.text,
                    touched=last.touched, value=regs[last.touched],
                )
        trace.entries.append(TraceEntry(
            index=len(trace.entries),
            pc=pc,
            text=disassemble_instruction(ins, pc, second=second),
            touched=touched,
        ))


def trace_program(program, context: bytes | None = None,
                  max_entries: int = 10_000, **vm_kwargs) -> Trace:
    """Convenience: run ``program`` under the tracer, return the trace."""
    vm = TracingInterpreter(program, max_entries=max_entries, **vm_kwargs)
    vm.run(context=context)
    return vm.trace
