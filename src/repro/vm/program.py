"""Container application images: bytecode plus data sections and metadata."""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field

from repro.vm import isa
from repro.vm.errors import EncodingError
from repro.vm.instruction import SLOT_SIZE, Instruction, decode_program, encode_program
from repro.vm.predecode import Decoded


@dataclass
class Program:
    """A loadable Femto-Container application.

    ``slots`` is the raw slot list (wide instructions occupy two entries,
    exactly as in the binary format), ``rodata`` and ``data`` are the
    read-only and mutable data sections referenced through the rBPF
    ``lddwr``/``lddwd`` extension opcodes.
    """

    #: Runtime tag: every ``Program`` is an rBPF image (Wasm and script
    #: images are separate classes behind the same duck-typed surface).
    runtime = "rbpf"

    slots: list[Instruction]
    rodata: bytes = b""
    data: bytes = b""
    name: str = "app"
    #: Optional symbol table: label -> slot index (filled by the assembler).
    symbols: dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_bytes(
        cls,
        raw: bytes,
        rodata: bytes = b"",
        data: bytes = b"",
        name: str = "app",
    ) -> "Program":
        return cls(slots=decode_program(raw), rodata=rodata, data=data, name=name)

    def to_bytes(self) -> bytes:
        """Flat bytecode image (what travels inside a SUIT payload)."""
        return encode_program(self.slots)

    @property
    def image_hash(self) -> str:
        """Stable content hash of the image (text + data sections).

        Two :class:`Program` objects decoded from the same SUIT payload
        hash identically, which is what lets the process-wide
        :data:`~repro.vm.imagecache.IMAGE_CACHE` share verify results,
        pre-decoded slot tables and JIT templates across container
        instances.  The name is deliberately excluded — the image is
        content-addressed, like the flash slot it models.

        Cached per object, invalidated when ``slots`` is replaced or
        resized or when either data section is reassigned (the same
        immutability convention as :attr:`decoded`).
        """
        slots, rodata, data = self.slots, self.rodata, self.data
        cache = getattr(self, "_hash_cache", None)
        if (cache is not None and cache[0] is slots
                and cache[1] == len(slots)
                and cache[2] is rodata and cache[3] is data):
            return cache[4]
        digest = hashlib.sha256()
        digest.update(self.to_bytes())
        # Length-prefix the data sections so (rodata, data) boundaries
        # cannot alias between images with identical concatenations.
        digest.update(struct.pack("<II", len(rodata), len(data)))
        digest.update(rodata)
        digest.update(data)
        value = digest.hexdigest()
        self._hash_cache = (slots, len(slots), rodata, data, value)
        return value

    def seed_hash_cache(self, image_hash: str) -> None:
        """Prime :attr:`image_hash` with a hash already computed from the
        same content (an installer decoding many instances of one image
        hashes it once).  The caller owns the equality guarantee; the
        cache layout stays private to this module."""
        self._hash_cache = (self.slots, len(self.slots), self.rodata,
                            self.data, image_hash)

    @property
    def decoded(self) -> list[Decoded]:
        """Pre-decoded slot table, computed once per image *content*.

        The per-object cache is invalidated when the ``slots`` list is
        replaced or resized; in-place mutation of individual slots after
        the first execution is not supported (images are immutable once
        installed, mirroring the on-device flash layout).  On a per-object
        miss the shared :data:`~repro.vm.imagecache.IMAGE_CACHE` is
        consulted, so N instances deserialized from the same image bytes
        pre-decode exactly once.
        """
        slots = self.slots
        cache = getattr(self, "_decoded_cache", None)
        if cache is not None and cache[0] is slots and cache[1] == len(slots):
            return cache[2]
        from repro.vm.imagecache import IMAGE_CACHE

        decoded = IMAGE_CACHE.decoded(self)
        self._decoded_cache = (slots, len(slots), decoded)
        return decoded

    @property
    def code_size(self) -> int:
        """Size of the executable text in bytes (Table 2's 'code size')."""
        return len(self.slots) * SLOT_SIZE

    @property
    def image_size(self) -> int:
        """Total size stored on the device: text plus data sections."""
        return self.code_size + len(self.rodata) + len(self.data)

    def __len__(self) -> int:
        return len(self.slots)

    def instruction_at(self, pc: int) -> Instruction:
        if not 0 <= pc < len(self.slots):
            raise EncodingError(f"pc {pc} outside program of {len(self.slots)} slots")
        return self.slots[pc]

    def iter_logical(self):
        """Yield ``(pc, instruction)`` skipping wide continuation slots."""
        pc = 0
        while pc < len(self.slots):
            ins = self.slots[pc]
            yield pc, ins
            pc += 2 if ins.opcode in isa.WIDE_OPCODES else 1

    def opcode_histogram(self) -> dict[str, int]:
        """Static mnemonic counts (used by the compression analysis)."""
        histogram: dict[str, int] = {}
        for _, ins in self.iter_logical():
            histogram[ins.name] = histogram.get(ins.name, 0) + 1
        return histogram
