"""Result assembly: paper-style tables and figures for the benchmarks."""

from repro.analysis.figures import bar_chart, pie_breakdown
from repro.analysis.tables import format_bytes, format_table, format_us

__all__ = [
    "bar_chart",
    "format_bytes",
    "format_table",
    "format_us",
    "pie_breakdown",
]
