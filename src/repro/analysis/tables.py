"""ASCII rendering of paper-style tables for benchmark output."""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Render a simple aligned table with a separator under the header."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in cells)) if cells
        else len(headers[col])
        for col in range(len(headers))
    ]

    def render_row(row: Sequence[str]) -> str:
        return "  ".join(value.rjust(widths[col]) if col else value.ljust(widths[col])
                         for col, value in enumerate(row))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in cells)
    return "\n".join(lines)


def format_bytes(count: int) -> str:
    """Human-readable byte counts the way the paper writes them."""
    if count >= 1024 and count % 1024 == 0:
        return f"{count // 1024} KiB"
    if count >= 10 * 1024:
        return f"{count / 1024:.1f} KiB"
    return f"{count} B"


def format_us(value_us: float) -> str:
    if value_us >= 1000:
        return f"{value_us / 1000:.2f} ms"
    if value_us >= 10:
        return f"{value_us:.0f} us"
    return f"{value_us:.2f} us"
