"""ASCII bar charts standing in for the paper's figures."""

from __future__ import annotations

from typing import Mapping, Sequence


def bar_chart(
    title: str,
    labels: Sequence[str],
    series: Mapping[str, Sequence[float]],
    unit: str = "",
    width: int = 48,
) -> str:
    """Grouped horizontal bar chart (one group per label).

    ``series`` maps a series name (e.g. "rBPF") to one value per label.
    """
    peak = max(
        (value for values in series.values() for value in values),
        default=1.0,
    ) or 1.0
    name_width = max((len(name) for name in series), default=4)
    lines = [title]
    for index, label in enumerate(labels):
        lines.append(f"{label}:")
        for name, values in series.items():
            value = values[index]
            bar = "#" * max(1, round(width * value / peak)) if value else ""
            lines.append(
                f"  {name.ljust(name_width)} |{bar.ljust(width)}| "
                f"{value:,.2f} {unit}".rstrip()
            )
    return "\n".join(lines)


def pie_breakdown(title: str, shares: Mapping[str, float]) -> str:
    """Textual pie chart: percentage per slice (Fig 2)."""
    total = sum(shares.values()) or 1.0
    lines = [title]
    for name, value in shares.items():
        percent = 100.0 * value / total
        bar = "#" * max(1, round(percent / 2))
        lines.append(f"  {name:24s} {percent:5.1f}%  {bar}")
    return "\n".join(lines)
