#!/usr/bin/env python3
"""§5: secure over-the-air deployment with SUIT (CBOR + COSE + Ed25519).

A maintainer signs a manifest naming a hook UUID as the storage location,
POSTs it to the device over CoAP, and the device's SUIT worker fetches the
payload block-wise, verifies everything, and hot-attaches the container —
no firmware update, no reboot.  Then three attacks from the threat model
(§3) are attempted and rejected.

Run with:  python examples/secure_update.py
"""

from repro import FC_HOOK_SCHED, HostingEngine, Kernel, assemble
from repro.net import (
    CoapClient,
    CoapMessage,
    CoapServer,
    Interface,
    Link,
    UdpStack,
    coap,
)
from repro.suit import (
    SuitEnvelope,
    SuitManifest,
    SuitUpdateWorker,
    ed25519,
    payload_digest,
)
from repro.workloads import thread_counter_program

MAINTAINER_SEED = bytes.fromhex(
    "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60")
ATTACKER_SEED = bytes(range(64, 96))


def main() -> None:
    kernel = Kernel()
    engine = HostingEngine(kernel)

    # Wire up the network: device <-> maintainer host, 5 % frame loss.
    link = Link(kernel, loss=0.05, seed=42)
    device_if = link.attach(Interface("2001:db8::device"))
    host_if = link.attach(Interface("2001:db8::maintainer"))
    device_udp, host_udp = UdpStack(device_if), UdpStack(host_if)

    # Maintainer side: a CoAP firmware repository + a client for triggers.
    repo = CoapServer(kernel, host_udp.socket(5683), threaded=False)
    maintainer = CoapClient(kernel, host_udp.socket(49001))

    # Device side: trust anchor provisioned at manufacture, SUIT worker,
    # and the /suit/trigger endpoint.
    trust_anchor = ed25519.public_key(MAINTAINER_SEED)
    device_client = CoapClient(kernel, device_udp.socket(49000))
    worker = SuitUpdateWorker(engine, device_client,
                              trust_anchor=trust_anchor,
                              repo_addr="2001:db8::maintainer")
    device_server = CoapServer(kernel, device_udp.socket(5683))
    worker.register_trigger_resource(device_server)
    worker.on_result = lambda r: print(
        f"  [device] update finished: {r.status.value} "
        f"({r.duration_us / 1000:.1f} ms) — {r.message}")

    # --- the legitimate update ------------------------------------------
    payload = thread_counter_program().to_bytes()
    repo.register_blob("/fw/thread-counter", lambda: payload)
    hook_uuid = str(engine.hook(FC_HOOK_SCHED).uuid)
    manifest = SuitManifest(
        sequence_number=1,
        storage_location=hook_uuid,
        digest=payload_digest(payload),
        size=len(payload),
        uri="/fw/thread-counter",
        name="thread-counter",
    )
    envelope = SuitEnvelope.create(manifest, MAINTAINER_SEED)
    print(f"maintainer: signed manifest seq=1 for hook {hook_uuid[:13]}..., "
          f"payload {len(payload)} B, envelope {len(envelope.encode())} B")

    trigger = CoapMessage(mtype=coap.CON, code=coap.POST,
                          payload=envelope.encode())
    trigger.add_uri_path("/suit/trigger")
    maintainer.request("2001:db8::device", 5683, trigger,
                       lambda r: print("  [maintainer] trigger acknowledged "
                                       f"({coap.code_string(r.code)})"))
    kernel.run(until_us=60_000_000)
    assert engine.hook(FC_HOOK_SCHED).occupied
    print("container live on the scheduler hook; "
          f"{link.stats.frames_sent} frames on air, "
          f"{link.stats.frames_dropped} lost to the radio\n")

    # --- attacks ----------------------------------------------------------
    print("attack 1: replay the same (authentic) manifest")
    worker.trigger(envelope.encode())
    kernel.run(until_us=kernel.now_us + 30_000_000)

    print("attack 2: forged manifest signed by a non-trusted key")
    forged = SuitEnvelope.create(
        SuitManifest(sequence_number=9, storage_location=hook_uuid,
                     digest=payload_digest(b"evil"), size=4, uri="/fw/evil",
                     name="evil"),
        ATTACKER_SEED,
    )
    worker.trigger(forged.encode())
    kernel.run(until_us=kernel.now_us + 30_000_000)

    print("attack 3: man-in-the-middle swaps the payload on the wire")
    evil_payload = assemble("lddw r1, 0x0\n    ldxdw r0, [r1]\n    exit")
    repo.register_blob("/fw/v2", lambda: evil_payload.to_bytes())
    swapped = SuitManifest(
        sequence_number=2, storage_location=hook_uuid,
        digest=payload_digest(payload),  # digest of the *real* payload
        size=len(payload), uri="/fw/v2", name="v2",
    )
    worker.trigger(SuitEnvelope.create(swapped, MAINTAINER_SEED).encode())
    kernel.run(until_us=kernel.now_us + 60_000_000)

    statuses = [r.status.value for r in worker.results]
    print(f"\nupdate log: {statuses}")
    assert statuses == ["ok", "sequence-replay", "signature-invalid",
                        "payload-digest-mismatch"]
    print("every attack rejected; the installed container kept running.")


if __name__ == "__main__":
    main()
