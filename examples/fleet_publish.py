#!/usr/bin/env python3
"""Fleet-wide OTA publish with health-gated canaries.

The final layer of the paper's §5 update story: a maintainer signs **one**
spec manifest and :class:`~repro.deploy.FleetPublisher` fans it out over a
shared low-power radio link to every device's
:class:`~repro.suit.SpecUpdateWorker` trigger endpoint.  Each device then
authenticates the envelope itself, enforces its *own* anti-rollback
sequence, fetches the payload block-wise from the maintainer repository,
and reconciles itself transactionally — one publish, N independent
per-device convergences, all riding the content-addressed image cache on
the host side while every device's virtual clock is charged the full
modelled cost.

The walkthrough shows the whole lifecycle:

1. publish v1 fleet-wide and watch devices 2..N converge cache-warm;
2. replay the old sequence number — refused by every device;
3. republish the identical spec — converges with zero actions;
4. canary-publish a cycle-hungry v2 under a strict
   :class:`~repro.deploy.HealthGate` — rolled back over the radio
   without any fault ever firing, controls never even triggered;
5. canary-publish the fixed v2 — baked, judged healthy, promoted.

Run with:  python examples/fleet_publish.py
"""

from repro.core.hooks import FC_HOOK_FANOUT, HookMode
from repro.deploy import (
    AttachmentSpec,
    DeploymentSpec,
    HealthGate,
    HookSpec,
    ImageSpec,
    PublishOptions,
    plan,
)
from repro.scenarios import build_fleet_publisher
from repro.vm import assemble
from repro.vm.imagecache import IMAGE_CACHE

#: Burns a bounded loop per run — v1 spins 8 iterations, the "regressed"
#: v2 spins 800 (a 100x cycle regression that never faults), the fixed
#: v2 is lean again.
SPIN = """
    mov r6, {count}
loop:
    sub r6, 1
    jne r6, 0, loop
    mov r0, {value}
    exit
"""


def make_spec(name: str, count: int, value: int) -> DeploymentSpec:
    image = ImageSpec.from_program(
        assemble(SPIN.format(count=count, value=value), name=name))
    return DeploymentSpec(
        name=name,
        tenants=("ops",),
        hooks=(HookSpec(FC_HOOK_FANOUT, HookMode.SYNC),),
        images={"worker": image},
        attachments=(AttachmentSpec(image="worker", hook=FC_HOOK_FANOUT,
                                    tenant="ops", name="worker", count=2),),
    )


def show(result) -> None:
    for row in result.devices:
        print(f"    {row.device.name:6} {row.role:9} "
              f"{row.result.status.value:17} {row.actions} actions  "
              f"{row.wall_s * 1e3:6.2f} ms wall  "
              f"{row.cache_hits} cache hits/{row.cache_misses} misses")


def main() -> None:
    IMAGE_CACHE.clear()
    publisher = build_fleet_publisher(devices=4)
    fleet = publisher.fleet
    v1 = make_spec("release-v1", count=8, value=7)

    print("1. one signed manifest, four devices, one shared link")
    rollout = publisher.publish(v1)
    show(rollout)
    print("   speedup of warm devices over dev0: "
          + ", ".join(f"{s:.1f}x" for s in rollout.speedups()))
    print("   fleet converged: "
          f"{all(plan(d.engine, v1).empty for d in fleet.devices)}")

    print("\n2. replaying sequence "
          f"{rollout.sequence_number} (anti-rollback, per device)")
    replay = publisher.publish(
        v1, PublishOptions(sequence_number=rollout.sequence_number))
    print("   statuses: "
          + ", ".join(r.result.status.value for r in replay.devices))

    print("\n3. republishing the identical spec under a new sequence")
    republish = publisher.publish(v1)
    print(f"   converged with "
          f"{sum(r.actions for r in republish.devices)} total actions "
          f"(seq {republish.sequence_number})")

    # The health gate: max 1000 modelled cycles per run for the worker
    # slots, and device-wide agreement is implied by zero faults here.
    gate = HealthGate(cycle_budgets={"worker-0": 1000, "worker-1": 1000})

    print("\n4. canary publish of a 100x cycle regression (never faults)")
    hungry = make_spec("release-v2", count=800, value=8)
    bad = publisher.publish(hungry, PublishOptions(
        canary_count=1, bake_us=300_000.0, bake_fires=3, health_gate=gate))
    show(bad)
    print(f"   -> {'ROLLED BACK' if bad.rolled_back else 'PROMOTED'}: "
          f"{bad.reason}")
    print("   controls untouched: "
          f"{all(plan(d.engine, v1).empty for d in fleet.devices[1:])}")

    print("\n5. canary publish of the lean fix")
    fixed = make_spec("release-v2-fixed", count=8, value=8)
    good = publisher.publish(fixed, PublishOptions(
        canary_count=1, bake_us=300_000.0, bake_fires=3, health_gate=gate))
    show(good)
    print(f"   -> {'PROMOTED' if good.promoted else 'ROLLED BACK'}: "
          f"{good.reason}")
    print("   fleet converged on the fix: "
          f"{all(plan(d.engine, fixed).empty for d in fleet.devices)}")


if __name__ == "__main__":
    main()
