#!/usr/bin/env python3
"""§3/§9: the threat model, live — a malicious tenant attacks the sandbox.

Six escape attempts, each mapped to an attack class from the paper's
threat model.  Some are stopped *before* execution by the pre-flight
checker, the rest abort at runtime via the memory-access checks and the
finite-execution budget.  The host OS and the co-resident honest tenant
are never disturbed.

Run with:  python examples/fault_isolation_demo.py
"""

from repro import FC_HOOK_TIMER, HostingEngine, Kernel, assemble
from repro.core import AttachError, ContainerContract
from repro.rtos import Sleep
from repro.vm.helpers import BPF_PRINTF

ATTACKS = [
    ("jump outside the program text (escape to another tenant's code)",
     "ja +1000\n    exit"),
    ("write to the read-only register r10 (corrupt the stack pointer)",
     "mov r10, 0\n    exit"),
    ("forge a pointer and read OS memory",
     "lddw r1, 0x20000000\n    sub r1, 4096\n    ldxdw r0, [r1]\n    exit"),
    ("scan past the end of the 512 B stack",
     "mov r1, r10\n    add r1, 512\n    stb [r1+0], 0x41\n    exit"),
    ("burn CPU forever (resource-exhaustion denial of service)",
     "spin:\n    add r1, 1\n    ja spin"),
    ("divide by zero to crash the interpreter",
     "mov r1, 0\n    mov r0, 7\n    div r0, r1\n    exit"),
]


def main() -> None:
    kernel = Kernel()
    engine = HostingEngine(kernel)
    malicious = engine.create_tenant("mallory")
    honest = engine.create_tenant("alice")

    # Alice's well-behaved container keeps a heartbeat in her store.
    heartbeat = engine.load(assemble("""
    mov r1, 0x1
    mov r2, r10
    call bpf_fetch_tenant
    ldxw r3, [r10+0]
    add r3, 1
    mov r1, 0x1
    mov r2, r3
    call bpf_store_tenant
    mov r0, r3
    exit
"""), tenant=honest, name="heartbeat")
    engine.attach(heartbeat, FC_HOOK_TIMER)

    print("launching Mallory's attacks:\n")
    for description, source in ATTACKS:
        program = assemble(source, name="attack")
        container = engine.load(program, tenant=malicious)
        try:
            engine.attach(container, FC_HOOK_TIMER)
        except AttachError as error:
            print(f"* {description}\n  -> REJECTED pre-flight: "
                  f"{str(error).split(': ', 1)[-1]}\n")
            continue
        run = engine.execute(container)
        assert not run.ok
        print(f"* {description}\n  -> CONTAINED at runtime: "
              f"{run.fault.kind}: {run.fault.message}\n")
        engine.detach(container)

    # Contract enforcement: Mallory may only call printf, nothing else.
    print("* capability abuse: contract grants only bpf_printf, code calls "
          "the key-value store")
    greedy = engine.load(
        assemble("mov r1, 1\n    mov r2, 2\n    call bpf_store_global\n    exit"),
        tenant=malicious,
        contract=ContainerContract(helpers=frozenset({BPF_PRINTF})),
    )
    try:
        engine.attach(greedy, FC_HOOK_TIMER)
    except AttachError as error:
        print(f"  -> REJECTED pre-flight: {str(error).split(': ', 1)[-1]}\n")

    # Alice never noticed any of it.
    for _ in range(3):
        engine.execute(heartbeat)
    assert honest.store.fetch(0x1) == 3

    def background(thread):
        yield Sleep(1000)

    kernel.create_thread("os-task", background)
    kernel.run_until_idle()
    print(f"Alice's heartbeat count: {honest.store.fetch(0x1)} "
          "(her tenant store is untouched)")
    print(f"kernel alive at t={kernel.now_us / 1000:.2f} ms, "
          f"{kernel.scheduler.switch_count} clean context switches — "
          "the OS was shielded from every attack.")


if __name__ == "__main__":
    main()
