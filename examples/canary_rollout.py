#!/usr/bin/env python3
"""Over-the-air spec reconciliation + canary fleet rollout.

Two layers on top of the paper's §5/§8 update story:

1. **OTA spec update** — instead of shipping one container image for one
   hook, the maintainer signs a whole :class:`DeploymentSpec` (canonical
   CBOR behind COSE/Ed25519) and the device reconciles *itself* through
   the declarative plan/apply reconciler: tenants created, images
   installed, stale slots detached — one transactional radio-delivered
   apply.
2. **Canary fleet rollout** — an edited spec is staged on a canary
   subset first, baked on the canaries' own virtual clocks, and promoted
   to the rest of the fleet only if the canaries' fault counters stayed
   at zero.  A poisoned image (verifies clean, faults at runtime) rolls
   back on the canaries and never reaches the rest of the fleet.

Run with:  python examples/canary_rollout.py
"""

from repro.core.hooks import FC_HOOK_FANOUT, FC_HOOK_TIMER, HookMode
from repro.deploy import (
    AttachmentSpec,
    DeploymentSpec,
    Fleet,
    HookSpec,
    ImageSpec,
    plan,
)
from repro.scenarios import build_spec_ota_rig
from repro.vm import assemble
from repro.vm.imagecache import IMAGE_CACHE


def make_spec(name: str, worker_image: ImageSpec) -> DeploymentSpec:
    sensor = ImageSpec.from_program(
        assemble("mov r0, 21\n    lsh r0, 1\n    exit", name="sensor"))
    return DeploymentSpec(
        name=name,
        tenants=("ops",),
        hooks=(HookSpec(FC_HOOK_FANOUT, HookMode.SYNC),),
        images={"worker": worker_image, "sensor": sensor},
        attachments=(
            AttachmentSpec(image="worker", hook=FC_HOOK_FANOUT,
                           tenant="ops", name="worker", count=2),
            AttachmentSpec(image="sensor", hook=FC_HOOK_TIMER,
                           tenant="ops", name="sensor",
                           period_us=250_000.0),
        ),
    )


def main() -> None:
    IMAGE_CACHE.clear()
    good = ImageSpec.from_program(
        assemble("mov r0, 7\n    exit", name="worker-v1"))
    poisoned = ImageSpec.from_program(assemble(
        "lddw r1, 0x10\n    ldxb r0, [r1]\n    exit", name="worker-v2-bad"))
    fixed = ImageSpec.from_program(
        assemble("mov r0, 8\n    exit", name="worker-v2"))

    # -- 1. one device reconciles itself from a radio-delivered spec -------
    rig = build_spec_ota_rig()
    base = make_spec("ota-base", good)
    result = rig.publish(base)
    print(f"OTA spec update: {result.status.value} — {result.message}")
    print("  containers now: "
          f"{sorted(c.name for c in rig.engine.containers())}")
    result = rig.publish(base)  # same spec again: idempotent
    print(f"  republish: {result.status.value} — {result.message}")
    assert result.ok and plan(rig.engine, base).empty

    # -- 2. canary rollout across a fleet ----------------------------------
    fleet = Fleet(6, implementation="jit")
    fleet.apply(make_spec("fleet-base", good))
    print(f"\nfleet of {len(fleet)} devices converged on 'fleet-base'")

    bad = fleet.canary_rollout(make_spec("fleet-v2", poisoned),
                               canary_count=2, bake_us=1_500_000.0,
                               bake_fires=4)
    print(f"poisoned rollout on {', '.join(bad.canary_names)}: "
          f"{'ROLLED BACK' if bad.rolled_back else 'promoted'} "
          f"({bad.reason})")
    assert bad.rolled_back and not bad.control

    release = make_spec("fleet-v2", fixed)
    ok = fleet.canary_rollout(release, canary_count=2,
                              bake_us=1_500_000.0, bake_fires=4)
    print(f"fixed rollout: {'PROMOTED' if ok.promoted else 'rolled back'} "
          f"({ok.reason})")
    assert ok.promoted
    assert all(plan(device.engine, release).empty
               for device in fleet.devices)
    speedups = ", ".join(f"{s:.1f}x" for s in ok.promotion_speedups())
    print(f"promotion rode the canary-warmed image cache: {speedups}")
    print("\nno bad image ever ran outside the canary subset.")


if __name__ == "__main__":
    main()
