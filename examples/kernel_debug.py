#!/usr/bin/env python3
"""Use-case 2 (§8.2): hot-path kernel debug code — the thread counter.

Listing 2 of the paper: a container attached to the *scheduler hook* runs
on every context switch and maintains per-thread activation counters in
the global key-value store.  This example spins up a small workload of
RTOS threads, lets the container observe the scheduler, and cross-checks
its counters against the kernel's own ground truth.

Run with:  python examples/kernel_debug.py
"""

from repro import FC_HOOK_SCHED, HostingEngine, Kernel
from repro.rtos import Sleep, YieldCPU
from repro.workloads import thread_counter_program


def sensor_task(thread):
    """Periodic task: pretend to sample a sensor every 5 ms."""
    for _ in range(20):
        thread.charge(2_000)  # ~31 us of CPU work
        yield Sleep(5_000)


def crunch_task(thread):
    """CPU-bound task yielding cooperatively."""
    for _ in range(30):
        thread.charge(8_000)
        yield YieldCPU()


def network_task(thread):
    """Bursty task."""
    for _ in range(10):
        thread.charge(1_000)
        yield Sleep(11_000)


def main() -> None:
    kernel = Kernel()
    engine = HostingEngine(kernel)

    # Deploy Listing 2 on the scheduler launchpad — a hot code path.
    counter = engine.load(thread_counter_program())
    engine.attach(counter, FC_HOOK_SCHED)
    print(f"thread-counter attached to {FC_HOOK_SCHED} "
          f"({counter.program.code_size} B of bytecode)")

    threads = [
        kernel.create_thread("sensor", sensor_task, priority=4),
        kernel.create_thread("crunch", crunch_task, priority=6),
        kernel.create_thread("network", network_task, priority=5),
    ]
    kernel.run_until_idle()

    print(f"\nsimulation done at t={kernel.now_us / 1000:.2f} ms, "
          f"{kernel.scheduler.switch_count} context switches")
    print(f"the container ran {counter.runs} times "
          f"(avg {counter.total_cycles / max(counter.runs, 1):.0f} cycles "
          "per activation)\n")

    print(f"{'thread':10s} {'pid':>4s} {'container count':>16s} "
          f"{'kernel truth':>13s}")
    counters = engine.global_store.snapshot()
    for thread in threads:
        counted = counters.get(thread.pid, 0)
        print(f"{thread.name:10s} {thread.pid:4d} {counted:16d} "
              f"{thread.activations:13d}")
        assert counted == thread.activations
    print("\ncontainer counters match the scheduler exactly.")

    # What did this instrumentation cost? (Table 4's question.)
    board = kernel.board
    per_switch = counter.total_cycles / max(counter.runs, 1)
    print(f"instrumentation cost: ~{per_switch:.0f} cycles "
          f"({board.us(per_switch):.1f} us) per context switch — "
          "tolerable even on this hot path (paper §10.4).")


if __name__ == "__main__":
    main()
