#!/usr/bin/env python3
"""Fleet scale-out: 1,000 devices behind one control plane.

Everything the maintainer stack learned in the earlier walkthroughs —
signed spec releases, OTA triggers, per-device convergence — runs here
at fleet scale through :class:`~repro.deploy.ControlPlane`:

1. stand up a 1,000-device fleet behind one control-plane service;
2. :meth:`~repro.deploy.ControlPlane.submit` signs a release *once*
   (sequence number, envelope, payload) before anything goes on air;
3. :meth:`~repro.deploy.ControlPlane.publish` fans it out with the
   fleet-scale profile (:meth:`~repro.deploy.PublishOptions.scale`):
   ONE multicast trigger carrying the integrated payload, a bounded
   randomized-suppression ack sample instead of 1,000 ack storms, and
   a sharded co-run of the device kernels;
4. a late device registers at runtime, converges off the next publish,
   and a retired device is evicted without disturbing anyone;
5. :meth:`~repro.deploy.ControlPlane.status` streams one typed row per
   device — cheap enough to call at N=1000.

Run with:  python examples/fleet_scale.py
"""

from repro.core.hooks import FC_HOOK_FANOUT, HookMode
from repro.deploy import (
    AttachmentSpec,
    DeploymentSpec,
    HookSpec,
    ImageSpec,
    PublishOptions,
)
from repro.scenarios import build_control_plane
from repro.vm import assemble
from repro.vm.imagecache import IMAGE_CACHE

DEVICES = 1000


def make_spec(name: str, value: int) -> DeploymentSpec:
    base = ImageSpec.from_program(
        assemble(f"mov r0, {value}\n    exit", name=name))
    image = ImageSpec(name=base.name, text=base.text,
                      rodata=bytes([value]) * 1024)
    return DeploymentSpec(
        name=name,
        tenants=("ops",),
        hooks=(HookSpec(FC_HOOK_FANOUT, HookMode.SYNC),),
        images={"app": image},
        attachments=(AttachmentSpec(image="app", hook=FC_HOOK_FANOUT,
                                    tenant="ops", name="app", count=1),),
    )


def describe(result) -> None:
    rate = len(result.rows()) / result.wall_s
    print(f"   {len(result.rows())} devices converged in "
          f"{result.wall_s:.2f} s wall ({rate:.0f} devices/s)")
    if result.multicast:
        per_device = result.trigger_tx_bytes / len(result.rows())
        print(f"   ONE broadcast trigger: {result.trigger_tx_bytes} B "
              f"total = {per_device:.1f} B/device on the maintainer radio")
        print(f"   suppression ack sample: {len(result.mcast_acks)} of "
              f"{len(result.rows())} devices elected themselves: "
              f"{', '.join(sorted(result.mcast_acks)[:4])}, ...")


def main() -> None:
    IMAGE_CACHE.clear()
    print(f"1. one control plane, {DEVICES} devices")
    plane = build_control_plane(devices=DEVICES)
    print(f"   registry holds {len(plane)} devices, "
          f"first={plane.devices()[0].name} last={plane.devices()[-1].name}")

    print("\n2. sign the release once, before anything goes on air")
    v1 = plane.submit(make_spec("scale-v1", value=7))
    print(f"   {v1.name}: seq {v1.sequence_number}, "
          f"{len(v1.envelope)} B envelope, {len(v1.payload)} B payload")

    print("\n3. fleet-scale publish: multicast trigger + sharded co-run")
    rollout = plane.publish(v1)
    assert rollout.ok, rollout.reason
    describe(rollout)

    print("\n4. elastic fleet: register late, evict retired")
    late = plane.register(name="late-joiner")
    stale = next(row for row in plane.status() if row.name == late.name)
    print(f"   {late.name} registered at index {stale.index}, "
          f"sequence {stale.sequence} (never converged)")
    v2 = plane.submit(make_spec("scale-v2", value=8))
    rollout2 = plane.publish(v2, PublishOptions.scale(ack_sample=4))
    assert rollout2.ok, rollout2.reason
    describe(rollout2)
    plane.evict(plane.devices()[0].name)
    print(f"   evicted one device; registry now holds {len(plane)}")

    print("\n5. streamed status, one typed row per device")
    rows = list(plane.status())
    for row in rows[:3]:
        print(f"   {row.name:10} idx={row.index:4} {row.board:10} "
              f"seq={row.sequence} spec={row.spec} "
              f"reboots={row.reboots} radio={row.radio_uj:.1f} uJ")
    consistent = sum(row.sequence == v2.sequence_number for row in rows)
    print(f"   ... {consistent}/{len(rows)} devices at "
          f"{v2.name} — fleet consistent: {consistent == len(rows)}")


if __name__ == "__main__":
    main()
