#!/usr/bin/env python3
"""Use-cases 1 & 3 (§8.3, Fig 5): multi-tenant networked sensor node.

One simulated device hosts three containers from two mutually-distrusting
tenants:

* tenant A: a timer-driven sensor container (SAUL temperature read +
  moving average into the tenant store) and a CoAP response formatter
  serving the average at ``GET /sensor/temp``;
* tenant B: the kernel-debug thread counter on the scheduler hook.

A host-side CoAP client polls the device over a lossy 802.15.4-class
link.  Watch the tenants stay isolated while sharing the device.

Run with:  python examples/networked_sensor.py
"""

from repro.net import CoapMessage, coap
from repro.scenarios import COAP_PORT, DEVICE_ADDR, build_multi_tenant_device
from repro.workloads import KEY_SENSOR_AVG, KEY_SENSOR_RAW


def main() -> None:
    device = build_multi_tenant_device(sensor_period_us=500_000,
                                       link_loss=0.05)
    kernel = device.kernel
    print("device up:", ", ".join(
        f"{c.name} ({c.tenant.name})" for c in device.engine.containers()))

    # Let the sensor container take a few samples.
    kernel.run(until_us=3_000_000)
    store_a = device.tenant_a.store
    print("\nafter 3 s: tenant A store holds "
          f"avg={store_a.fetch(KEY_SENSOR_AVG)} "
          f"raw={store_a.fetch(KEY_SENSOR_RAW)} (centi-degC)")
    print(f"tenant B store holds {len(device.tenant_b.store)} entries "
          "(isolated: the sensor average is not visible here)")

    # Query the device over CoAP, as a cloud service would.
    replies = []
    for poll in range(3):
        request = CoapMessage(mtype=coap.CON, code=coap.GET)
        request.add_uri_path("/sensor/temp")
        device.client.request(DEVICE_ADDR, COAP_PORT, request, replies.append)
        kernel.run(until_us=kernel.now_us + 2_000_000)

    print("\nCoAP polls over the lossy link "
          f"({device.link.stats.frames_dropped} frames dropped, "
          "CON retransmission recovered):")
    for index, reply in enumerate(replies):
        print(f"  poll {index}: {coap.code_string(reply.code)} "
              f"payload={reply.payload.decode()!r} centi-degC")

    # The thread counter (tenant B) observed all of this activity.
    counters = device.engine.global_store.snapshot()
    print("\ntenant B's scheduler counters (pid -> activations):")
    for pid, count in sorted(counters.items()):
        name = kernel.threads[pid].name if pid in kernel.threads else "?"
        print(f"  pid {pid} ({name}): {count}")

    runs = {c.name: c.runs for c in device.engine.containers()}
    print(f"\ncontainer activations: {runs}")
    print(f"total engine RAM: {device.engine.total_ram_bytes()} B "
          "(3 containers + stores; §10.3 measures ~3.2 KiB)")
    assert replies, "no CoAP replies received"
    assert all(r.code == coap.CONTENT for r in replies)


if __name__ == "__main__":
    main()
