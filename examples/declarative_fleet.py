#!/usr/bin/env python3
"""Declarative deployment: one spec, edited and re-applied, then a fleet.

The imperative way to stand up a device is a hand-wired sequence of
``create_tenant`` / ``load`` / ``attach`` calls.  The deployment API
(:mod:`repro.deploy`) replaces that with desired state: a
``DeploymentSpec`` names tenants, content-addressed images and per-hook
attachments; ``plan`` diffs it against the live engine; ``apply``
executes the diff transactionally.  Editing one image and re-applying is
a SUIT-style rollout: the reconciler plans exactly one hot-swap
``replace``, keyed by content hash.

The same spec then drives a four-device fleet.  The process-wide image
cache is keyed by content hash, so device 1 pays the cold verify+JIT
cost and devices 2..4 attach through pure cache hits — while every
device's *virtual* clock is charged the identical full install cost.

Run with:  python examples/declarative_fleet.py
"""

from repro.core import FC_HOOK_FANOUT, HostingEngine
from repro.deploy import (
    AttachmentSpec,
    DeploymentSpec,
    Fleet,
    HookSpec,
    ImageSpec,
    apply_spec,
    plan,
)
from repro.rtos import Kernel, nrf52840
from repro.vm import assemble
from repro.vm.imagecache import IMAGE_CACHE


def counter_spec(version: int) -> DeploymentSpec:
    """Two tenants x two instances of one tiny counter image."""
    image = ImageSpec.from_program(
        assemble(f"mov r0, {version}\n    exit", name="counter"))
    return DeploymentSpec(
        name="counter-fleet",
        tenants=("tenant-a", "tenant-b"),
        hooks=(HookSpec(FC_HOOK_FANOUT),),
        images={"counter": image},
        attachments=tuple(
            AttachmentSpec(image="counter", hook=FC_HOOK_FANOUT,
                           tenant=tenant, name=f"{tenant}-worker-{{i}}",
                           count=2)
            for tenant in ("tenant-a", "tenant-b")
        ),
    )


def main() -> None:
    IMAGE_CACHE.clear()

    # 1. Converge one device onto the spec, twice (second plan is empty).
    engine = HostingEngine(Kernel(nrf52840()), implementation="jit")
    spec_v1 = counter_spec(version=1)
    result = apply_spec(engine, spec_v1)
    print(f"v1 applied: {len(result.attached)} containers, "
          f"{result.cycles_charged} cycles charged")
    print(f"re-plan of v1: {len(plan(engine, spec_v1).actions)} actions "
          "(idempotent)")

    # 2. Edit the image, re-apply: exactly one replace per instance slot,
    #    hot-swapped by content hash, names preserved.
    spec_v2 = counter_spec(version=2)
    rollout_plan = plan(engine, spec_v2)
    print(f"\nv2 rollout plan ({len(rollout_plan.actions)} actions):")
    print(rollout_plan.describe())
    apply_spec(engine, spec_v2)
    values = {c.name: engine.execute(c).value for c in engine.containers()}
    print("after rollout every instance returns 2: "
          f"{sorted(values.values()) == [2, 2, 2, 2]}")

    # 3. The same spec across a fleet: cold device 1, cache-warm 2..4.
    IMAGE_CACHE.clear()
    fleet = Fleet(4, implementation="jit")
    rollout = fleet.apply(spec_v2)
    print(f"\nfleet of {len(fleet)} devices, "
          f"{len(fleet.containers())} containers total, "
          f"{fleet.total_ram_bytes()} B RAM fleet-wide")
    for device_rollout in rollout.devices:
        print(f"  {device_rollout.device.name}: "
              f"{device_rollout.wall_s * 1e6:7.0f} us wall, "
              f"{device_rollout.cycles_charged} modelled cycles, "
              f"{device_rollout.cache_misses} cache misses")
    cycles = rollout.cycles_per_device()
    print("modelled cycles identical on every device: "
          f"{len(set(cycles)) == 1}")
    speedups = ", ".join(f"{s:.1f}x" for s in rollout.speedups())
    print(f"cache-warm rollout speedup over dev0: {speedups}")


if __name__ == "__main__":
    main()
