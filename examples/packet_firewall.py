#!/usr/bin/env python3
"""The firewall-trigger pattern (§7): inspect packets, decide the flow.

"A firewall-type trigger can grant read-only access to the network packet,
allowing the virtual machine to inspect the packet, but not to modify it"
— and "the result from the Femto-Container execution can modify the
control flow in the firmware as defined in the launch pad" (Fig 3).

This example compiles a ``fc.hook.net-rx`` launchpad into the device's
receive path. A deployed container sees each incoming UDP datagram
read-only and returns a verdict; the firmware drops or accepts the packet
accordingly. The filter can be hot-swapped at runtime without touching the
firmware — the whole point of Femto-Containers.

Run with:  python examples/packet_firewall.py
"""

from repro import HostingEngine, Kernel, assemble
from repro.core import FC_HOOK_NET_RX, Hook, HookMode, HookPolicy
from repro.net import Interface, Link, UdpStack

ACCEPT, DROP = 0, 1

# Verdict logic: drop every datagram whose UDP destination port is 6666
# and anything that carries the byte pattern 0xBADBAD at payload start.
# Context layout (packed by the launchpad): [dst_port u16][payload ...]
FILTER_V1 = """
; net-rx filter v1: block port 6666
    ldxh  r2, [r1+0]          ; dst port
    jne   r2, 6666, inspect
    mov   r0, 1               ; DROP
    exit
inspect:
    ldxb  r2, [r1+2]          ; payload[0]
    jne   r2, 0xba, ok
    ldxb  r3, [r1+3]
    jne   r3, 0xdb, ok
    mov   r0, 1               ; DROP malicious marker
    exit
ok:
    mov   r0, 0               ; ACCEPT
    exit
"""

# Tightened policy, deployed later without firmware change: also rate-
# limits port 7777 to the first 3 datagrams (counter in the local store).
FILTER_V2 = """
; net-rx filter v2: v1 rules + rate-limit port 7777
    ldxh  r2, [r1+0]
    jne   r2, 6666, check_rate
    mov   r0, 1
    exit
check_rate:
    jne   r2, 7777, ok
    mov   r1, 0x77
    mov   r2, r10
    call  bpf_fetch_local
    ldxw  r3, [r10+0]
    add   r3, 1
    mov   r1, 0x77
    mov   r2, r3
    call  bpf_store_local
    jgt   r3, 3, drop
ok:
    mov   r0, 0
    exit
drop:
    mov   r0, 1
    exit
"""


def main() -> None:
    kernel = Kernel()
    engine = HostingEngine(kernel)
    # The net-rx launchpad: packets are read-only to containers.
    engine.register_hook(Hook(FC_HOOK_NET_RX, mode=HookMode.SYNC,
                              policy=HookPolicy(context_writable=False)))

    link = Link(kernel, loss=0.0, seed=1)
    device_if = link.attach(Interface("device"))
    peer_if = link.attach(Interface("peer"))
    device_udp = UdpStack(device_if)
    peer_udp = UdpStack(peer_if)

    # Compile the launchpad into the receive path: every datagram fires
    # the hook; any attached container returning nonzero drops it.
    delivered: list[tuple[int, bytes]] = []
    inner_receive = device_if.receive

    def filtered_receive(frame: bytes, src_addr: str) -> None:
        dst_port = int.from_bytes(frame[2:4], "little")
        context = dst_port.to_bytes(2, "little") + frame[4:20]
        firing = engine.fire_hook(FC_HOOK_NET_RX, context)
        if any(verdict == DROP for verdict in firing.results):
            return  # launchpad verdict: drop before the UDP stack sees it
        inner_receive(frame, src_addr)

    device_if.receive = filtered_receive
    for port in (5000, 6666, 7777):
        sock = device_udp.socket(port)
        sock.on_datagram = lambda dg: delivered.append(
            (dg.dst_port, dg.payload))

    sender = peer_udp.socket(9000)

    def blast(label: str) -> None:
        delivered.clear()
        for port, payload in [
            (5000, b"hello"), (6666, b"attack"), (5000, b"\xba\xdb\xad!"),
            (7777, b"a"), (7777, b"b"), (7777, b"c"), (7777, b"d"),
            (7777, b"e"),
        ]:
            sender.send_to("device", port, payload)
        kernel.run_until_idle()
        summary = {}
        for port, _payload in delivered:
            summary[port] = summary.get(port, 0) + 1
        print(f"{label}: delivered per port = {summary}")

    print("no filter attached (empty hook, ~109 ticks per packet):")
    blast("  baseline")

    container = engine.load(assemble(FILTER_V1, name="filter-v1"))
    engine.attach(container, FC_HOOK_NET_RX)
    print("\nfilter v1 deployed (blocks port 6666 + marker payloads):")
    blast("  v1")
    assert all(port != 6666 for port, _p in delivered)
    assert all(not p.startswith(b"\xba\xdb") for _q, p in delivered)

    v2 = engine.replace(container, assemble(FILTER_V2, name="filter-v2"))
    print("\nhot-swapped to filter v2 (adds rate limit on port 7777):")
    blast("  v2")
    port_7777 = sum(1 for port, _p in delivered if port == 7777)
    assert port_7777 == 3, port_7777
    print(f"  port 7777 rate-limited to {port_7777} datagrams")

    print(f"\nfilter ran {container.runs + v2.runs} times, "
          "0 faults, packet buffer was read-only throughout.")


if __name__ == "__main__":
    main()
