#!/usr/bin/env python3
"""§6: the ultra-lightweight virtualization shoot-out, reproduced.

Runs the fletcher32(360 B) workload on every candidate runtime — native,
mini-WebAssembly (WASM3-class), rBPF, and the two script interpreters
(RIOTjs-/MicroPython-class) — and prints Tables 1 and 2, ending with the
paper's conclusion: why Femto-Containers chose eBPF.

Run with:  python examples/runtime_comparison.py
"""

from repro.analysis import format_table, format_us
from repro.rtos import nrf52840
from repro.runtimes import all_candidates, host_os_ram_bytes, host_os_rom_bytes
from repro.workloads.fletcher32 import FLETCHER32_INPUT, fletcher32_reference


def main() -> None:
    board = nrf52840()
    expected = fletcher32_reference(FLETCHER32_INPUT)
    metrics = [c.fletcher32_metrics(board) for c in all_candidates()]
    for m in metrics:
        assert m.result == expected, f"{m.name} computed a wrong checksum!"
    print(f"all five runtimes computed fletcher32 = 0x{expected:08x} "
          "over the same 360 B input\n")

    rows = [
        [m.name, f"{m.rom_bytes / 1024:.1f}", f"{m.ram_bytes / 1024:.2f}"]
        for m in metrics if m.name != "Native C"
    ]
    rows.append(["Host OS (without VM)",
                 f"{host_os_rom_bytes() / 1024:.1f}",
                 f"{host_os_ram_bytes() / 1024:.2f}"])
    print(format_table(["Runtime", "ROM KiB", "RAM KiB"], rows,
                       title="Table 1: runtime memory requirements"))

    native = next(m for m in metrics if m.name == "Native C")
    rows = [
        [m.name, f"{m.code_size} B",
         format_us(m.cold_start_us) if m.cold_start_us else "--",
         format_us(m.run_us),
         f"{m.run_us / native.run_us:.0f}x"]
        for m in metrics
    ]
    print()
    print(format_table(
        ["Runtime", "code size", "cold start", "run time", "vs native"],
        rows, title="Table 2: fletcher32 on Cortex-M4 @ 64 MHz"))

    rbpf = next(m for m in metrics if m.name == "rBPF")
    smallest_other = min(m.rom_bytes for m in metrics
                         if m.name not in ("Native C", "rBPF"))
    print("\nwhy eBPF won (§6.1):")
    print(f"  - ROM: {smallest_other / rbpf.rom_bytes:.0f}x smaller than the "
          "next-best runtime")
    print(f"  - cold start: {format_us(rbpf.cold_start_us)} vs tens of "
          "milliseconds for transcoding/parsing runtimes")
    print("  - no heap, 620 B per instance: many concurrent VMs fit")
    print("  - ~1.5 kLoC implementation: small enough to formally verify")
    print("  - the 2x runtime deficit vs WASM 'will have no significant "
          "impact in practice for the use cases we target'")


if __name__ == "__main__":
    main()
