#!/usr/bin/env python3
"""Multi-runtime deploy plane: rBPF, mini-Wasm and script side by side.

One declarative spec hosts all three registered container runtimes on one
device: an rBPF thread counter, a mini-Wasm fletcher32 checksummer and a
script fletcher32 checksummer, all attached to the same launchpad.  One
hook firing drives all three; the engine contains a Wasm out-of-bounds
fault exactly like an rBPF one; and the per-runtime cost models (§6 of
the paper) show why rBPF is the paper's pick for hook-path workloads.

Run with:  python examples/runtime_matrix.py
"""

from repro.core import FC_HOOK_FANOUT, HostingEngine
from repro.deploy import ImageSpec, apply, plan, runtime_matrix_spec
from repro.rtos import Kernel
from repro.rtos.shell import DeviceShell
from repro.workloads import FLETCHER32_INPUT, fletcher32_reference

POISON_WASM = ("module pages=1\nfunc main params=1 locals=0\n"
               "    i32.const 999999\n    i32.load8_u 0\n"
               "    return\nend\n")


def main() -> None:
    engine = HostingEngine(Kernel(), implementation="jit")
    spec = runtime_matrix_spec()
    deployment = plan(engine, spec)
    print(f"spec {spec.name!r} -> {len(deployment.actions)} actions:")
    print(deployment.describe())
    apply(engine, deployment)

    print("\none firing, three runtimes "
          f"(reference checksum 0x{fletcher32_reference(FLETCHER32_INPUT):08x}):")
    firing = engine.fire_hook(FC_HOOK_FANOUT,
                              context=bytearray(FLETCHER32_INPUT))
    for run in firing.runs:
        runtime = getattr(run.container.program, "runtime", "rbpf")
        print(f"  {run.container.name:18} [{runtime:6}] "
              f"value=0x{run.value:08x}  cycles={run.cycles:>9,}  "
              f"{'ok' if run.ok else run.fault.kind}")

    print("\nfault containment is runtime-agnostic — a Wasm container "
          "dereferencing\npast its linear memory is contained like an rBPF "
          "wild pointer:")
    poison = engine.load(
        ImageSpec.from_wasm(POISON_WASM, name="poison").instantiate(),
        name="poison")
    engine.attach(poison, FC_HOOK_FANOUT)
    run = engine.execute(poison)
    print(f"  poison run: fault={run.fault.kind}: {run.fault.message}")
    print("  host and neighbours keep running:")
    engine.detach(poison)

    print("\ndevice shell view:")
    print(DeviceShell(engine).execute("fc list"))


if __name__ == "__main__":
    main()
