#!/usr/bin/env python3
"""Fleet-scale deployment (§2): one function, many devices.

"Considering potentially large fleets of IoT devices, the scenario may
nevertheless involve a large number of containers (but across a large
number of devices)."

A maintainer pushes the same signed container to a fleet of devices
sharing one low-power radio domain.  Each device runs its own hosting
engine, SUIT worker and CoAP endpoint; the simulation shares one virtual
clock (a synchronized world-clock view of the fleet — fine for measuring
update latency and radio budget, which is what this example reports).

Run with:  python examples/fleet_update.py
"""

from repro import HostingEngine, Kernel
from repro.core import FC_HOOK_SCHED
from repro.net import CoapClient, CoapServer, Interface, Link, UdpStack
from repro.rtos import EnergyMeter
from repro.suit import (
    SuitEnvelope,
    SuitManifest,
    SuitUpdateWorker,
    ed25519,
    payload_digest,
)
from repro.workloads import thread_counter_program

FLEET_SIZE = 6
MAINTAINER_SEED = bytes(range(32))


def main() -> None:
    kernel = Kernel()  # shared world clock (all devices are nRF52840s)
    link = Link(kernel, loss=0.08, seed=2024)
    host_if = link.attach(Interface("host"))
    host_udp = UdpStack(host_if)
    repo = CoapServer(kernel, host_udp.socket(5683), threaded=False)

    payload = thread_counter_program().to_bytes()
    repo.register_blob("/fw/thread-counter", lambda: payload)
    trust_anchor = ed25519.public_key(MAINTAINER_SEED)

    # Commission the fleet.
    devices = []
    for index in range(FLEET_SIZE):
        address = f"2001:db8::{index + 1:x}"
        iface = link.attach(Interface(address))
        udp = UdpStack(iface)
        engine = HostingEngine(kernel)
        client = CoapClient(kernel, udp.socket(40000))
        worker = SuitUpdateWorker(engine, client, trust_anchor=trust_anchor,
                                  repo_addr="host")
        devices.append((address, engine, worker))
    print(f"fleet of {len(devices)} devices commissioned on one "
          "802.15.4 domain (8% frame loss)\n")

    # The maintainer signs one manifest per device (the storage-location
    # UUID is the same hook on every device) and staggers the triggers to
    # avoid radio congestion.
    for index, (address, engine, worker) in enumerate(devices):
        manifest = SuitManifest(
            sequence_number=1,
            storage_location=str(engine.hook(FC_HOOK_SCHED).uuid),
            digest=payload_digest(payload),
            size=len(payload),
            uri="/fw/thread-counter",
            name="thread-counter",
        )
        envelope = SuitEnvelope.create(manifest, MAINTAINER_SEED)
        kernel.timers.set(
            lambda w=worker, e=envelope: w.trigger(e.encode()),
            delay_us=index * 150_000.0,
        )

    kernel.run(until_us=1_200_000_000)

    print(f"{'device':16s} {'status':10s} {'latency':>10s} {'attached':>9s}")
    all_ok = True
    for address, engine, worker in devices:
        result = worker.results[-1] if worker.results else None
        status = result.status.value if result else "no-result"
        latency = f"{result.duration_us / 1000:.0f} ms" if result else "-"
        attached = engine.hook(FC_HOOK_SCHED).occupied
        all_ok &= bool(result and result.ok and attached)
        print(f"{address:16s} {status:10s} {latency:>10s} {str(attached):>9s}")

    stats = link.stats
    meter = EnergyMeter(kernel.board)
    meter.add_radio_bytes(stats.bytes_sent)
    print(f"\nradio: {stats.frames_sent} frames, {stats.bytes_sent} B on "
          f"air, {stats.frames_dropped} frames lost "
          f"(~{meter.report().radio_uj / 1000:.1f} mJ fleet-wide)")
    print("vs full-firmware updates: "
          f"{FLEET_SIZE * 52_440} B would have gone on air — "
          f"{FLEET_SIZE * 52_440 / max(stats.bytes_sent, 1):.0f}x more.")
    assert all_ok, "not every device completed the update"
    print("\nentire fleet updated over the air; no firmware was reflashed.")


if __name__ == "__main__":
    main()
