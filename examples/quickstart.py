#!/usr/bin/env python3
"""Quickstart: write, verify, deploy and run your first Femto-Container.

Walks the full happy path on a simulated nRF52840 (Cortex-M4) device:
assemble an eBPF function, load it into the hosting engine, attach it to a
launchpad hook (pre-flight verification happens here), execute it, and look
at the timing/accounting the engine reports.

Run with:  python examples/quickstart.py
"""

from repro import FC_HOOK_TIMER, HostingEngine, Kernel, assemble


def main() -> None:
    # A device is a kernel on a board model (default: nRF52840 @ 64 MHz).
    kernel = Kernel()
    engine = HostingEngine(kernel)

    # A tiny function: sum the 32-bit integers 1..n, n arriving via the
    # hook context struct.  Plain eBPF assembly, no toolchain needed.
    program = assemble(
        """
        ; context: { u32 n }
            ldxw  r2, [r1+0]       ; n
            mov   r0, 0            ; accumulator
        loop:
            jeq   r2, 0, done
            add   r0, r2
            sub   r2, 1
            ja    loop
        done:
            exit
        """,
        name="sum-to-n",
    )
    print(f"program: {program.name}, {len(program.slots)} instructions, "
          f"{program.code_size} bytes of bytecode")

    # Load the image and attach it to a firmware launchpad.  Attach runs
    # the pre-flight checker; malformed programs are rejected right here.
    container = engine.load(program)
    engine.attach(container, FC_HOOK_TIMER)
    print(f"attached to {container.hook.name} "
          f"(per-instance RAM: {container.vm.ram_bytes} B)")

    # Fire it with a context struct, exactly like an OS event would.
    n = 100
    run = engine.execute(container, context=n.to_bytes(8, "little"))
    assert run.ok
    print(f"sum(1..{n}) = {run.value}")
    print(f"executed {run.stats.executed} instructions, "
          f"{run.stats.branches_taken} taken branches")
    print(f"virtual cost on {kernel.board.cpu}: {run.cycles} cycles "
          f"= {run.duration_us:.1f} us @ {kernel.board.mhz} MHz")

    # Faults are contained: a bad pointer aborts the container, not the OS.
    hostile = engine.load(assemble(
        "lddw r1, 0xdead0000\n    ldxdw r0, [r1]\n    exit", name="hostile"))
    engine.attach(hostile, FC_HOOK_TIMER)
    bad_run = engine.execute(hostile)
    print(f"\nhostile container faulted safely: {bad_run.fault.kind}: "
          f"{bad_run.fault.message}")
    print("the kernel is unaffected and keeps scheduling.")


if __name__ == "__main__":
    main()
